"""Budget-governed tenant session semantics."""

import threading

import pytest

from repro.service.session import (
    BudgetExceededError,
    SessionBudget,
    TenantSession,
)

pytestmark = pytest.mark.service


def make_session(budget: SessionBudget, per_row=(0.5, 1e-6), model_k=8, **kwargs):
    return TenantSession(
        session_id="s1",
        tenant="acme",
        model_id="m" * 64,
        budget=budget,
        per_row_cost=per_row,
        model_k=model_k,
        **kwargs,
    )


class TestSessionBudget:
    def test_validation(self):
        with pytest.raises(ValueError):
            SessionBudget(epsilon=-1)
        with pytest.raises(ValueError):
            SessionBudget(delta=2.0)
        with pytest.raises(ValueError):
            SessionBudget(max_rows=-1)
        with pytest.raises(ValueError):
            SessionBudget(min_k=0)

    def test_k_floor_rejects_weak_models(self):
        with pytest.raises(ValueError, match="k-deniability floor"):
            make_session(SessionBudget(min_k=50), model_k=10)

    def test_k_floor_accepts_strong_models(self):
        session = make_session(SessionBudget(min_k=8), model_k=8)
        assert session.model_k == 8


class TestReserveCommit:
    def test_reserve_holds_worst_case(self):
        session = make_session(SessionBudget(epsilon=10.0, max_rows=100))
        session.reserve("r1", 4)
        remaining = session.remaining()
        assert remaining["epsilon"] == pytest.approx(10.0 - 4 * 0.5)
        assert remaining["rows"] == 96

    def test_commit_refunds_unreleased_rows(self):
        session = make_session(SessionBudget(epsilon=10.0, max_rows=100))
        reservation = session.reserve("r1", 4)
        session.commit(reservation, 1)  # only 1 of 4 passed the privacy test
        assert session.spent() == {"rows": 1, "epsilon": pytest.approx(0.5),
                                   "delta": pytest.approx(1e-6)}
        assert session.remaining()["rows"] == 99

    def test_commit_records_one_accountant_entry(self):
        session = make_session(SessionBudget(epsilon=10.0))
        reservation = session.reserve("r1", 3)
        session.commit(reservation, 3)
        (entry,) = session.accountant.entries
        assert entry.count == 3
        assert entry.epsilon == 0.5
        assert entry.scope == "session/s1"

    def test_zero_release_commit_spends_nothing(self):
        session = make_session(SessionBudget(epsilon=1.0))
        reservation = session.reserve("r1", 2)
        session.commit(reservation, 0)
        assert session.spent()["epsilon"] == 0.0
        assert session.accountant.entries == []

    def test_cancel_releases_the_hold(self):
        session = make_session(SessionBudget(max_rows=4))
        reservation = session.reserve("r1", 4)
        session.cancel(reservation)
        assert session.remaining()["rows"] == 4
        session.reserve("r2", 4)  # the budget is free again

    def test_commit_more_than_reserved_rejected(self):
        session = make_session(SessionBudget())
        reservation = session.reserve("r1", 2)
        with pytest.raises(ValueError, match="cannot commit"):
            session.commit(reservation, 3)


class TestRefusal:
    def test_overspend_refused_with_remainder(self):
        session = make_session(SessionBudget(epsilon=1.0))
        with pytest.raises(BudgetExceededError) as info:
            session.reserve("r1", 3)  # 3 * 0.5 = 1.5 > 1.0
        assert info.value.remaining["epsilon"] == pytest.approx(1.0)
        # Nothing was held by the refused request.
        session.reserve("r2", 2)

    def test_outstanding_reservations_count_against_new_requests(self):
        session = make_session(SessionBudget(max_rows=5))
        session.reserve("r1", 4)
        with pytest.raises(BudgetExceededError) as info:
            session.reserve("r2", 2)
        assert info.value.remaining["rows"] == 1

    def test_refusal_never_partial(self):
        # A request that half-fits is refused entirely, not trimmed.
        session = make_session(SessionBudget(max_rows=3))
        with pytest.raises(BudgetExceededError):
            session.reserve("r1", 5)
        assert session.spent()["rows"] == 0
        assert session.remaining()["rows"] == 3

    def test_refusal_recorded_in_ledger(self):
        session = make_session(SessionBudget(max_rows=1))
        with pytest.raises(BudgetExceededError):
            session.reserve("r1", 2)
        events = [event["event"] for event in session.ledger()]
        assert events == ["refusal"]


class TestConcurrency:
    def test_concurrent_reservations_never_jointly_overspend(self):
        # 16 threads race to reserve 1 row each against a 5-row budget:
        # exactly 5 must win, the rest must be refused.
        session = make_session(SessionBudget(max_rows=5))
        wins, refusals = [], []
        barrier = threading.Barrier(16)

        def worker(index: int) -> None:
            barrier.wait()
            try:
                reservation = session.reserve(f"r{index}", 1)
            except BudgetExceededError:
                refusals.append(index)
            else:
                session.commit(reservation, 1)
                wins.append(index)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(16)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(wins) == 5
        assert len(refusals) == 11
        assert session.spent()["rows"] == 5
        assert session.remaining()["rows"] == 0

    def test_audit_sink_sees_every_event(self):
        events = []
        session = make_session(SessionBudget(max_rows=10), audit_sink=events.append)
        reservation = session.reserve("r1", 2)
        session.commit(reservation, 2)
        assert [event["event"] for event in events] == ["reserve", "commit"]
        assert session.ledger() == events
