"""Folding conformance: fused concurrent requests are bit-identical to serial.

The PR 8 scale-out path has three moving parts, each proven here against the
serial unfolded ground truth with the shared :mod:`repro.testing.invariants`
checkers:

* :meth:`~repro.core.engine.SynthesisEngine.generate_folded` — K fold lanes
  in one fused job release exactly what K separate ``generate`` calls
  release, on the in-process path and on the multiprocess pool, including
  under a mid-fold worker SIGKILL (the PR 7 retry path);
* :class:`~repro.service.engine_pool.EnginePool` — bounded build/checkout,
  LRU reaping under a worker budget, broken-engine eviction;
* the folding :class:`~repro.service.scheduler.RequestScheduler` and the
  service's fold executor — a deterministically forced fold of concurrent
  ``/generate`` requests yields rows, ledgers and accountant spend
  bit-identical to the same requests served serially unfolded.
"""

import threading
import time
from collections import deque
from concurrent.futures import Future
from types import SimpleNamespace

import numpy as np
import pytest

from repro.core.engine import EngineBrokenError, FoldSpec, SynthesisEngine
from repro.privacy.plausible_deniability import PlausibleDeniabilityParams
from repro.service import (
    EnginePool,
    GenerateRequest,
    ModelRegistry,
    RequestScheduler,
    ServiceApp,
    WorkerBudgetError,
)
from repro.service.scheduler import SchedulerStoppedError
from repro.testing import KillWorkerAtChunk
from repro.testing.invariants import (
    assert_reports_identical,
    check_accountant_conservation,
    check_theorem1_bounds,
)
from repro.testing.scenarios import get_scenario

pytestmark = pytest.mark.service

FIT_SEED = 17
REQUEST_SEEDS = (101, 202, 303)

#: Lane mixes for the engine-level parity tests: different sizes, an explicit
#: attempt budget, and a repeated base seed (two tenants asking for the same
#: rows must both get them).
FOLD_SPECS = (
    FoldSpec(num_released=6, base_seed=101),
    FoldSpec(num_released=3, base_seed=202),
    FoldSpec(num_released=9, base_seed=303, max_attempts=500),
    FoldSpec(num_released=4, base_seed=101),
)


@pytest.fixture(scope="module")
def params():
    return PlausibleDeniabilityParams(k=10, gamma=4.0, epsilon0=1.0)


def _engine(unnoised_model, acs_splits, params, **kwargs):
    return SynthesisEngine(
        unnoised_model,
        acs_splits.seeds,
        params,
        chunk_size=16,
        batch_size=8,
        **kwargs,
    )


def _serial_reports(unnoised_model, acs_splits, params, specs):
    """The unfolded ground truth: one serial ``generate`` per spec."""
    with _engine(unnoised_model, acs_splits, params) as engine:
        return [
            engine.generate(
                spec.num_released,
                base_seed=spec.base_seed,
                max_attempts=spec.max_attempts,
            )
            for spec in specs
        ]


# --------------------------------------------------------------------------- #
# Engine level: generate_folded == K serial generates
# --------------------------------------------------------------------------- #
class TestGenerateFolded:
    def test_fold_matches_serial_in_process(self, unnoised_model, acs_splits, params):
        expected = _serial_reports(unnoised_model, acs_splits, params, FOLD_SPECS)
        with _engine(unnoised_model, acs_splits, params) as engine:
            folded = engine.generate_folded(list(FOLD_SPECS))
        assert len(folded) == len(FOLD_SPECS)
        for i, (want, got) in enumerate(zip(expected, folded)):
            assert_reports_identical(want, got, context=f"lane {i}")

    def test_fold_matches_serial_on_worker_pool(
        self, unnoised_model, acs_splits, params
    ):
        expected = _serial_reports(unnoised_model, acs_splits, params, FOLD_SPECS)
        with _engine(
            unnoised_model, acs_splits, params, num_workers=2
        ) as engine:
            folded = engine.generate_folded(list(FOLD_SPECS))
            # The same engine keeps serving correctly after a fold.
            after = engine.generate(6, base_seed=101)
        for i, (want, got) in enumerate(zip(expected, folded)):
            assert_reports_identical(want, got, context=f"pooled lane {i}")
        assert_reports_identical(expected[0], after, context="post-fold generate")

    def test_single_lane_fold_is_plain_generate(
        self, unnoised_model, acs_splits, params
    ):
        spec = FOLD_SPECS[0]
        with _engine(unnoised_model, acs_splits, params) as engine:
            [folded] = engine.generate_folded([spec])
            plain = engine.generate(spec.num_released, base_seed=spec.base_seed)
        assert_reports_identical(plain, folded, context="single-lane fold")

    def test_empty_fold_returns_nothing(self, unnoised_model, acs_splits, params):
        with _engine(unnoised_model, acs_splits, params) as engine:
            assert engine.generate_folded([]) == []

    @pytest.mark.chaos
    def test_sigkill_mid_fold_recovers_bit_identical(
        self, unnoised_model, acs_splits, params, tmp_path
    ):
        """A worker SIGKILLed mid-folded-batch: the retry path keeps every
        lane bit-identical to its serial unfolded ground truth."""
        expected = _serial_reports(unnoised_model, acs_splits, params, FOLD_SPECS)
        fault = KillWorkerAtChunk(chunk_index=1, marker_dir=str(tmp_path), times=1)
        with _engine(
            unnoised_model,
            acs_splits,
            params,
            num_workers=2,
            fault_injector=fault,
        ) as engine:
            folded = engine.generate_folded(list(FOLD_SPECS))
            health = engine.pool_health()
        assert fault.kills_fired() == 1
        assert health["worker_restarts"] == 1
        assert not health["broken"]
        for i, (want, got) in enumerate(zip(expected, folded)):
            assert_reports_identical(want, got, context=f"post-crash lane {i}")


# --------------------------------------------------------------------------- #
# Engine pool
# --------------------------------------------------------------------------- #
class _FakeEngine:
    """Duck-typed engine for pool tests: just health + close."""

    def __init__(self, model_id):
        self.model_id = model_id
        self.closed = False
        self.broken = False

    def pool_health(self):
        return {
            "broken": self.broken,
            "workers_alive": 0 if self.closed else 1,
            "worker_restarts": 0,
            "pool_rebuilds": 0,
        }

    def close(self):
        self.closed = True


class TestEnginePool:
    def test_release_reuses_the_built_engine(self):
        built = []

        def builder(model_id):
            engine = _FakeEngine(model_id)
            built.append(engine)
            return engine

        with EnginePool(builder) as pool:
            first = pool.checkout("m")
            pool.release(first)
            second = pool.checkout("m")
            pool.release(second)
        assert len(built) == 1
        assert first.engine is second.engine
        assert pool.health()["builds"] == 1

    def test_engines_per_model_bound_blocks_checkout(self):
        with EnginePool(_FakeEngine, engines_per_model=1) as pool:
            lease = pool.checkout("m")
            with pytest.raises(TimeoutError):
                pool.checkout("m", timeout=0.05)
            # A release unblocks a waiting checkout.
            waiter_result = []

            def waiter():
                waiter_result.append(pool.checkout("m", timeout=5.0))

            thread = threading.Thread(target=waiter)
            thread.start()
            pool.release(lease)
            thread.join(timeout=5.0)
            assert not thread.is_alive()
            assert waiter_result[0].engine is lease.engine
            pool.release(waiter_result[0])

    def test_discard_evicts_and_rebuilds(self):
        with EnginePool(_FakeEngine) as pool:
            first = pool.checkout("m")
            pool.discard(first)
            assert first.engine.closed
            second = pool.checkout("m")
            assert second.engine is not first.engine
            pool.release(second)
            health = pool.health()
        assert health["builds"] == 2
        assert health["evictions"] == 1

    def test_broken_engine_is_evicted_on_release(self):
        with EnginePool(_FakeEngine) as pool:
            lease = pool.checkout("m")
            lease.engine.broken = True
            pool.release(lease)  # must route through eviction, not reshelve
            assert lease.engine.closed
            replacement = pool.checkout("m")
            assert replacement.engine is not lease.engine
            pool.release(replacement)
            assert pool.health()["evictions"] == 1

    def test_broken_idle_engine_is_evicted_on_checkout(self):
        with EnginePool(_FakeEngine) as pool:
            lease = pool.checkout("m")
            engine = lease.engine
            pool.release(lease)
            engine.broken = True  # breaks while shelved
            fresh = pool.checkout("m")
            assert fresh.engine is not engine
            assert engine.closed
            pool.release(fresh)
            assert pool.health()["evictions"] == 1

    def test_worker_budget_reaps_lru_idle_engines(self):
        with EnginePool(_FakeEngine, worker_budget=2) as pool:
            lease_a = pool.checkout("a")
            pool.release(lease_a)
            time.sleep(0.01)  # make last_used strictly ordered
            lease_b = pool.checkout("b")
            pool.release(lease_b)
            lease_c = pool.checkout("c")  # budget full: reaps the LRU idle (a)
            health = pool.health()
            assert lease_a.engine.closed
            assert not lease_b.engine.closed
            assert health["reaped"] == 1
            assert health["workers_reserved"] == 2
            pool.release(lease_c)

    def test_worker_budget_smaller_than_one_engine_raises(self):
        with EnginePool(
            _FakeEngine, workers_per_engine=2, worker_budget=1
        ) as pool:
            with pytest.raises(WorkerBudgetError):
                pool.checkout("m")

    def test_release_after_close_closes_the_engine(self):
        pool = EnginePool(_FakeEngine)
        lease = pool.checkout("m")
        pool.close()
        assert not lease.engine.closed  # leased engines survive pool close
        pool.release(lease)
        assert lease.engine.closed
        with pytest.raises(RuntimeError):
            pool.checkout("m")

    def test_health_reports_per_model_and_global_counters(self):
        with EnginePool(_FakeEngine, engines_per_model=2, worker_budget=8) as pool:
            lease = pool.checkout("m")
            health = pool.health()
            pool.release(lease)
        assert health["models"]["m"] == {
            "engines": 1,
            "busy": 1,
            "workers_alive": 1,
            "worker_restarts": 0,
            "pool_rebuilds": 0,
            "broken": 0,
        }
        assert health["worker_budget"] == 8
        assert health["engines_per_model"] == 2
        assert health["workers_per_engine"] == 1


# --------------------------------------------------------------------------- #
# Scheduler folding
# --------------------------------------------------------------------------- #
def _request(i, model_id="model"):
    return GenerateRequest(
        request_id=f"r{i}", model_id=model_id, num_rows=1, base_seed=i
    )


class TestSchedulerFolding:
    def test_fold_executor_receives_the_whole_batch(self):
        folds = []

        def fold(model_id, requests):
            folds.append((model_id, [r.request_id for r in requests]))
            return [f"report-{r.request_id}" for r in requests]

        with RequestScheduler(fold_executor=fold, autostart=False) as scheduler:
            futures = [scheduler.submit(_request(i)) for i in range(3)]
            scheduler.start()
            results = [future.result(timeout=10) for future in futures]
            stats = scheduler.stats()
        assert folds == [("model", ["r0", "r1", "r2"])]
        assert results == ["report-r0", "report-r1", "report-r2"]
        assert stats.fold_factor == 3.0
        assert stats.coalesced == 3
        assert stats.queue_wait_seconds >= 0.0
        assert stats.utilization >= 0.0

    def test_exception_outcome_fails_only_that_request(self):
        def fold(model_id, requests):
            return [
                ValueError("lane refused") if r.request_id == "r1" else "ok"
                for r in requests
            ]

        with RequestScheduler(fold_executor=fold, autostart=False) as scheduler:
            futures = [scheduler.submit(_request(i)) for i in range(3)]
            scheduler.start()
            assert futures[0].result(timeout=10) == "ok"
            with pytest.raises(ValueError):
                futures[1].result(timeout=10)
            assert futures[2].result(timeout=10) == "ok"
            stats = scheduler.stats()
        assert stats.completed == 2
        assert stats.failed == 1

    def test_outcome_count_mismatch_fails_the_batch(self):
        with RequestScheduler(
            fold_executor=lambda model_id, requests: ["only-one"],
            autostart=False,
        ) as scheduler:
            futures = [scheduler.submit(_request(i)) for i in range(2)]
            scheduler.start()
            for future in futures:
                with pytest.raises(RuntimeError, match="outcome"):
                    future.result(timeout=10)

    def test_close_drains_the_in_flight_fold(self):
        entered = threading.Event()

        def fold(model_id, requests):
            entered.set()
            time.sleep(0.3)
            return ["done"] * len(requests)

        scheduler = RequestScheduler(fold_executor=fold)
        future = scheduler.submit(_request(0))
        assert entered.wait(timeout=5.0)
        scheduler.close(drain_timeout=10.0)
        # The in-flight fold finished inside close(); its future is resolved.
        assert future.done()
        assert future.result() == "done"

    def test_drain_timeout_abandons_stuck_folds_and_fails_queued(self):
        entered = threading.Event()
        release = threading.Event()

        def fold(model_id, requests):
            entered.set()
            assert release.wait(timeout=30)
            return ["late"] * len(requests)

        scheduler = RequestScheduler(fold_executor=fold)
        in_flight = scheduler.submit(_request(0))
        assert entered.wait(timeout=5.0)
        queued = scheduler.submit(_request(1))  # dispatcher busy: stays queued
        scheduler.close(drain_timeout=0.1)
        with pytest.raises(SchedulerStoppedError):
            queued.result(timeout=5.0)
        release.set()  # the abandoned fold still resolves its own future
        assert in_flight.result(timeout=5.0) == "late"

    def test_overflow_folds_run_on_parallel_dispatchers(self):
        barrier = threading.Barrier(2)

        def fold(model_id, requests):
            barrier.wait(timeout=10)  # both dispatchers must be folding at once
            return ["ok"] * len(requests)

        with RequestScheduler(
            fold_executor=fold,
            engines_per_model=2,
            max_batch=2,
            autostart=False,
        ) as scheduler:
            futures = [scheduler.submit(_request(i)) for i in range(4)]
            scheduler.start()
            for future in futures:
                assert future.result(timeout=10) == "ok"
            stats = scheduler.stats()
        assert stats.batches == 2
        assert sorted(stats.batch_sizes) == [2, 2]


# --------------------------------------------------------------------------- #
# Service level: a forced fold is bit-identical to serial unfolded service
# --------------------------------------------------------------------------- #
class _HoldFirstDispatch:
    """Dispatch hook that parks the first dispatched request until released.

    While the single dispatcher is parked, the remaining concurrent requests
    pile up in the model's fold queue — so releasing the gate makes the
    dispatcher drain them as ONE fused fold, deterministically.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._first = None
        self.first_seen = threading.Event()
        self.release = threading.Event()

    def __call__(self, request):
        with self._lock:
            if self._first is None:
                self._first = request.request_id
            first = self._first == request.request_id
        if first and not self.release.is_set():
            self.first_seen.set()
            if not self.release.wait(timeout=30):  # pragma: no cover
                raise RuntimeError("fold gate never released")


def _strip_timestamps(ledger):
    return [
        {key: value for key, value in event.items() if key != "timestamp"}
        for event in ledger
    ]


def test_folded_service_is_bit_identical_to_serial_unfolded():
    scenario = get_scenario("toy-correlated")
    rows = scenario.target_released

    # Ground truth: the same requests served one at a time, never folded.
    serial = {}
    with ServiceApp(ModelRegistry(), num_workers=1) as app:
        app.publish_model("toy", scenario.dataset(0), scenario.config(), seed=FIT_SEED)
        sessions = {
            seed: app.create_session("toy")["session_id"] for seed in REQUEST_SEEDS
        }
        for seed in REQUEST_SEEDS:
            record = app.generate(sessions[seed], rows, seed=seed)
            session = app._session(sessions[seed])
            serial[seed] = {
                "report": record.report,
                "spent": session.spent(),
                "ledger": _strip_timestamps(session.ledger()),
            }

    gate = _HoldFirstDispatch()
    with ServiceApp(ModelRegistry(), num_workers=1, dispatch_hook=gate) as app:
        app.publish_model("toy", scenario.dataset(0), scenario.config(), seed=FIT_SEED)
        published = app.model("toy")
        sessions = {
            seed: app.create_session("toy")["session_id"] for seed in REQUEST_SEEDS
        }
        records = {}
        failures = []

        def client(seed):
            try:
                records[seed] = app.generate(sessions[seed], rows, seed=seed)
            except BaseException as exc:  # pragma: no cover - surfaced below
                failures.append(exc)

        threads = [
            threading.Thread(target=client, args=(seed,)) for seed in REQUEST_SEEDS
        ]
        # Start one client alone and wait for its dispatch to park in the
        # gate, so it is a batch of exactly one; the other two then queue
        # behind it and MUST fold into one fused batch.
        threads[0].start()
        assert gate.first_seen.wait(timeout=30)
        for thread in threads[1:]:
            thread.start()
        deadline = time.monotonic() + 30
        while app.scheduler.queue_depth() < len(REQUEST_SEEDS) - 1:
            assert time.monotonic() < deadline, "requests never queued"
            time.sleep(0.005)
        gate.release.set()
        for thread in threads:
            thread.join(timeout=60)
        assert not failures

        stats = app.scheduler.stats()
        health = app.healthz()

        for seed in REQUEST_SEEDS:
            session = app._session(sessions[seed])
            assert_reports_identical(
                serial[seed]["report"], records[seed].report, context=f"seed {seed}"
            )
            np.testing.assert_array_equal(
                serial[seed]["report"].released_dataset().data,
                records[seed].report.released_dataset().data,
            )
            assert session.spent() == serial[seed]["spent"]
            assert _strip_timestamps(session.ledger()) == serial[seed]["ledger"]
            check_theorem1_bounds(
                records[seed].report,
                published.params,
                num_seed_records=len(published.pipeline.splits.seeds),
            )
            check_accountant_conservation(session.accountant)

    # The fold demonstrably happened: the held-back pair shared one batch.
    assert stats.batches == 2
    assert sorted(stats.batch_sizes) == [1, 2]
    assert stats.coalesced == 2
    assert stats.fold_factor == 1.5
    # ... and /healthz surfaces the scaling metrics operators need.
    assert health["scheduler"]["fold_factor"] == stats.fold_factor
    assert health["scheduler"]["completed"] == len(REQUEST_SEEDS)
    model_health = health["engines"]["models"][published.model_id]
    assert model_health["engines"] == 1
    assert model_health["broken"] == 0
    assert health["engines"]["builds"] == 1


def test_fold_window_discards_broken_engine_and_retries_once():
    scenario = get_scenario("toy-correlated")

    class _BrokenOnceEngine:
        def generate_folded(self, specs):
            raise EngineBrokenError("engine gave up")

    class _GoodEngine:
        def generate_folded(self, specs):
            return [f"report-{spec.base_seed}" for spec in specs]

    class _StubPool:
        def __init__(self, engines):
            self.engines = deque(engines)
            self.discarded = []
            self.released = []

        def checkout(self, model_id, timeout=None):
            return SimpleNamespace(model_id=model_id, engine=self.engines.popleft())

        def discard(self, lease):
            self.discarded.append(lease.engine)

        def release(self, lease):
            self.released.append(lease.engine)

        def close(self):
            pass

        def health(self):
            return {"models": {}}

    # telemetry off: the stub engines return placeholder reports that the
    # fold-telemetry recorder could not introspect
    with ServiceApp(ModelRegistry(), num_workers=1, telemetry=False) as app:
        app.publish_model("toy", scenario.dataset(0), scenario.config(), seed=FIT_SEED)
        model_id = app.model("toy").model_id
        broken, good = _BrokenOnceEngine(), _GoodEngine()
        app._pool = _StubPool([broken, good])
        requests = [
            GenerateRequest(
                request_id=f"r{i}", model_id=model_id, num_rows=2, base_seed=seed
            )
            for i, seed in enumerate(REQUEST_SEEDS)
        ]
        reports = app._execute_fold(model_id, requests)
        assert reports == [f"report-{seed}" for seed in REQUEST_SEEDS]
        assert app._pool.discarded == [broken]  # evicted, not reshelved
        assert app._pool.released == [good]

        # Two broken engines in a row: the error surfaces after one retry.
        app._pool = _StubPool([_BrokenOnceEngine(), _BrokenOnceEngine()])
        with pytest.raises(EngineBrokenError):
            app._execute_fold(model_id, requests)
        assert len(app._pool.discarded) == 2
        app._pool = SimpleNamespace(close=lambda: None, health=lambda: {})
