"""Admission control, deadlines and shutdown: every refusal refunds its hold.

The scheduler-level tests use ``autostart=False`` to shape the queue
deterministically; the service-level tests inject a
:class:`~repro.testing.faults.DispatchDelayFault` so overload and deadline
expiry happen by construction, not by racing the dispatcher.
"""

import json
import socket
import threading
import time
import urllib.request

import pytest

from repro.service import ModelRegistry, ServiceApp, ServiceError, build_server
from repro.service.scheduler import (
    DeadlineExceededError,
    GenerateRequest,
    QueueFullError,
    RequestScheduler,
    SchedulerStoppedError,
)
from repro.testing import DispatchDelayFault
from repro.testing.scenarios import get_scenario

pytestmark = [pytest.mark.service, pytest.mark.chaos]

SCENARIO = get_scenario("tiny-n")


def request(number: int, deadline: float | None = None) -> GenerateRequest:
    return GenerateRequest(
        request_id=f"r{number:03d}",
        model_id="m",
        num_rows=1,
        base_seed=number,
        deadline=deadline,
    )


def make_app(**kwargs) -> ServiceApp:
    app = ServiceApp(ModelRegistry(), num_workers=1, **kwargs)
    app.publish_model("tiny", SCENARIO.dataset(0), SCENARIO.config(), seed=5)
    return app


# --------------------------------------------------------------------------- #
# Scheduler admission / deadline / shutdown semantics
# --------------------------------------------------------------------------- #
class TestSchedulerFaults:
    def test_queue_beyond_max_depth_is_refused(self):
        scheduler = RequestScheduler(
            lambda req: None, max_queue_depth=2, autostart=False
        )
        futures = [scheduler.submit(request(0)), scheduler.submit(request(1))]
        with pytest.raises(QueueFullError, match="max_queue_depth=2"):
            scheduler.submit(request(2))
        assert scheduler.queue_depth() == 2
        assert scheduler.stats().rejected == 1
        scheduler.close()
        for future in futures:
            with pytest.raises(SchedulerStoppedError):
                future.result(timeout=5)

    def test_expired_deadline_is_dropped_undispatched(self):
        executed = []
        scheduler = RequestScheduler(executed.append, autostart=False)
        late = scheduler.submit(request(0, deadline=time.monotonic() - 1.0))
        fresh = scheduler.submit(request(1, deadline=time.monotonic() + 30.0))
        scheduler.start()
        with pytest.raises(DeadlineExceededError):
            late.result(timeout=10)
        fresh.result(timeout=10)
        assert [req.request_id for req in executed] == ["r001"]
        assert scheduler.stats().expired == 1
        scheduler.close()

    def test_closed_scheduler_refuses_new_work(self):
        scheduler = RequestScheduler(lambda req: None)
        scheduler.close()
        with pytest.raises(SchedulerStoppedError):
            scheduler.submit(request(0))
        with pytest.raises(SchedulerStoppedError):
            scheduler.start()

    def test_validation(self):
        with pytest.raises(ValueError):
            RequestScheduler(lambda req: None, max_queue_depth=0, autostart=False)


# --------------------------------------------------------------------------- #
# Service-level refusal paths (every one refunds the reservation)
# --------------------------------------------------------------------------- #
class TestServiceRefunds:
    def test_deadline_miss_maps_to_504_and_refunds(self):
        # The fault stalls only the first request past its 50 ms deadline.
        with make_app(
            dispatch_hook=DispatchDelayFault(
                seconds=0.25, only_request_ids=("s00001-r00001",)
            ),
            deadline_ms=50.0,
        ) as app:
            session_id = app.create_session("tiny", budget={"max_rows": 8})[
                "session_id"
            ]
            with pytest.raises(ServiceError) as excinfo:
                app.generate(session_id, rows=3, seed=1)
            assert excinfo.value.status == 504
            assert excinfo.value.code == "deadline_exceeded"
            budget = app.budget(session_id)
            assert budget["reserved"]["rows"] == 0
            assert budget["spent"]["rows"] == 0
            assert budget["remaining"]["rows"] == 8
            assert app.scheduler.stats().expired == 1
            # The budget is fully restored: the same session can still spend.
            assert app.generate(session_id, rows=2, seed=2).num_released > 0

    def test_queue_overload_maps_to_503_with_retry_after(self):
        # One request holds the dispatcher inside the delay hook, the second
        # fills the single queue slot, so the third is refused at admission.
        with make_app(
            dispatch_hook=DispatchDelayFault(seconds=0.6), max_queue_depth=1
        ) as app:
            session_id = app.create_session("tiny", budget={"max_rows": 20})[
                "session_id"
            ]
            results = []
            threads = [
                threading.Thread(
                    target=lambda seed=seed: results.append(
                        app.generate(session_id, rows=2, seed=seed)
                    )
                )
                for seed in (1, 2)
            ]
            threads[0].start()
            time.sleep(0.2)  # first request picked up, sleeping in the hook
            threads[1].start()
            time.sleep(0.2)  # second request admitted and queued
            with pytest.raises(ServiceError) as excinfo:
                app.generate(session_id, rows=2, seed=3)
            for thread in threads:
                thread.join(timeout=30)
            assert excinfo.value.status == 503
            assert excinfo.value.code == "queue_full"
            assert excinfo.value.headers() == {"Retry-After": "1"}
            assert app.scheduler.stats().rejected == 1
            # Both admitted requests completed; the refused one left no hold.
            assert len(results) == 2
            budget = app.budget(session_id)
            assert budget["reserved"]["rows"] == 0
            assert budget["spent"]["rows"] == sum(r.num_released for r in results)

    def test_shutdown_refuses_with_503(self):
        with make_app() as app:
            session_id = app.create_session("tiny", budget={"max_rows": 8})[
                "session_id"
            ]
            app.scheduler.close()
            with pytest.raises(ServiceError) as excinfo:
                app.generate(session_id, rows=2, seed=1)
            assert excinfo.value.status == 503
            assert excinfo.value.code == "shutting_down"
            assert app.budget(session_id)["reserved"]["rows"] == 0


# --------------------------------------------------------------------------- #
# Dropped connection mid-stream + idempotent HTTP retry
# --------------------------------------------------------------------------- #
class TestDroppedConnectionRetry:
    @pytest.fixture()
    def service(self, tmp_path):
        app = make_app(journal=tmp_path / "journal.jsonl")
        server = build_server(app, host="127.0.0.1", port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        yield app, f"http://{host}:{port}"
        server.shutdown()
        server.server_close()
        app.close()

    def test_client_drop_mid_stream_then_idempotent_retry(self, service):
        app, url = service
        status, session = self._post(f"{url}/sessions", {"model": "tiny"})
        assert status == 201
        session_id = session["session_id"]

        # Start a streaming generate with an Idempotency-Key, read the first
        # header bytes, then drop the connection mid-response.
        host, port = url.removeprefix("http://").split(":")
        body = json.dumps(
            {"session": session_id, "rows": 3, "seed": 4, "stream": True}
        ).encode()
        with socket.create_connection((host, int(port)), timeout=30) as raw:
            raw.sendall(
                b"POST /generate HTTP/1.1\r\n"
                b"Host: service\r\n"
                b"Content-Type: application/json\r\n"
                b"Idempotency-Key: dropped-1\r\n"
                + f"Content-Length: {len(body)}\r\n\r\n".encode()
                + body
            )
            raw.recv(64)  # the response has started; now vanish mid-stream

        # Wait for the server to finish (and commit) the original request.
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            if app.budget(session_id)["spent"]["rows"] > 0:
                break
            time.sleep(0.05)
        spent = app.budget(session_id)["spent"]
        assert spent["rows"] > 0

        # The retry replays the recorded release: full rows, zero new spend.
        status, page = self._post(
            f"{url}/generate",
            {"session": session_id, "rows": 3, "seed": 4},
            headers={"Idempotency-Key": "dropped-1"},
        )
        assert status == 200
        assert page["released_rows"] == spent["rows"]
        assert app.budget(session_id)["spent"] == spent

    @staticmethod
    def _post(url, body, headers=None):
        req = urllib.request.Request(
            url,
            data=json.dumps(body).encode(),
            headers={"Content-Type": "application/json", **(headers or {})},
        )
        with urllib.request.urlopen(req, timeout=60) as response:
            return response.status, json.load(response)
