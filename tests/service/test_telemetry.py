"""End-to-end telemetry (PR 10): /healthz shape, /metrics exposition,
trace-tree integrity under concurrent folds and worker SIGKILL, and the
conformance guarantee that telemetry never changes what is released.
"""

import json
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.obs import Telemetry
from repro.obs.metrics import validate_exposition
from repro.service import ModelRegistry, ServiceApp, ServiceError, build_server
from repro.service.scheduler import (
    DeadlineExceededError,
    GenerateRequest,
    RequestScheduler,
)
from repro.testing import KillWorkerAtChunk
from repro.testing.invariants import assert_reports_identical
from repro.testing.scenarios import get_scenario

pytestmark = pytest.mark.service

SCENARIO = get_scenario("tiny-n")
FIT_SEED = 5

#: Metric names the scrape must always expose (the ISSUE's catalog core).
REQUIRED_METRICS = (
    "repro_requests_total",
    "repro_queue_wait_seconds",
    "repro_queue_depth",
    "repro_folds_total",
    "repro_fold_lanes",
    "repro_engine_utilization",
    "repro_chunk_retries_total",
    "repro_pool_rebuilds_total",
    "repro_privacy_test_attempts_total",
    "repro_privacy_scan_fraction",
    "repro_privacy_escalation_rate",
    "repro_tenant_rows_spent_total",
    "repro_phase_seconds_total",
)


def make_app(**kwargs) -> ServiceApp:
    app = ServiceApp(ModelRegistry(), num_workers=1, **kwargs)
    app.publish_model("tiny", SCENARIO.dataset(0), SCENARIO.config(), seed=FIT_SEED)
    return app


def span_index(trace: dict) -> dict:
    return {record["span"]: record for record in trace["spans"]}


def assert_single_tree(trace: dict) -> dict:
    """Every span's parent resolves inside the trace; exactly one root."""
    by_id = span_index(trace)
    roots = [r for r in trace["spans"] if r["parent"] is None]
    assert len(roots) == 1, [r["name"] for r in roots]
    for record in trace["spans"]:
        assert record["end"] >= record["start"]
        if record["parent"] is not None:
            assert record["parent"] in by_id, record
    return roots[0]


# --------------------------------------------------------------------------- #
# /healthz golden shape
# --------------------------------------------------------------------------- #
class TestHealthzShape:
    def test_golden_keys(self):
        with make_app() as app:
            session = app.create_session("tiny")["session_id"]
            app.generate(session, 2)
            payload = app.healthz()
        assert sorted(payload) == [
            "engines",
            "models",
            "privacy_test",
            "scheduler",
            "sessions",
            "status",
            "telemetry",
        ]
        assert sorted(payload["scheduler"]) == [
            "completed",
            "dispatchers_active",
            "dropped_before_fold",
            "failed",
            "fold_factor",
            "folded_lanes",
            "queue_depth",
            "utilization",
        ]
        assert payload["telemetry"]["enabled"] is True
        phases = payload["telemetry"]["phases"]
        for name in ("fit_cache", "reserve", "sample", "privacy_test", "commit"):
            assert name in phases, sorted(phases)
            assert phases[name]["calls"] >= 1
            assert phases[name]["seconds"] >= 0.0
        assert payload["scheduler"]["folded_lanes"] == 1
        assert payload["scheduler"]["dropped_before_fold"] == 0

    def test_telemetry_off_is_reported(self):
        with make_app(telemetry=False) as app:
            payload = app.healthz()
        assert payload["telemetry"] == {"enabled": False}


# --------------------------------------------------------------------------- #
# /metrics and /trace over a live HTTP server
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def live():
    app = make_app()
    server = build_server(app, host="127.0.0.1", port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield app, f"http://{host}:{port}"
    server.shutdown()
    server.server_close()
    app.close()


def http_get(url):
    try:
        with urllib.request.urlopen(url, timeout=30) as response:
            return response.status, dict(response.headers), response.read().decode()
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), error.read().decode()


class TestHttpEndpoints:
    def test_metrics_is_valid_exposition_with_catalog(self, live):
        app, url = live
        session = app.create_session("tiny", tenant="acme")["session_id"]
        app.generate(session, 2)
        status, headers, body = http_get(f"{url}/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        assert validate_exposition(body) == []
        for name in REQUIRED_METRICS:
            assert f"\n# TYPE {name} " in "\n" + body, name
        assert 'repro_tenant_rows_spent_total{tenant="acme"} 2' in body

    def test_trace_of_one_generate(self, live):
        app, url = live
        session = app.create_session("tiny")["session_id"]
        record = app.generate(session, 2)
        status, _headers, body = http_get(f"{url}/trace/{record.request_id}")
        assert status == 200
        trace = json.loads(body)
        assert trace["request_id"] == record.request_id
        names = {r["name"] for r in trace["spans"]}
        assert {
            "request",
            "reserve",
            "queue_wait",
            "fold",
            "engine_job",
            "engine_chunk",
            "privacy_test",
            "commit",
        } <= names
        root = assert_single_tree(trace)
        assert root["name"] == "request"
        test_span = next(r for r in trace["spans"] if r["name"] == "privacy_test")
        assert test_span["attrs"]["path"] in ("exact", "approximate")
        assert test_span["attrs"]["records_checked"] > 0

    def test_unknown_trace_404(self, live):
        _app, url = live
        status, _headers, body = http_get(f"{url}/trace/nope")
        assert status == 404
        assert json.loads(body)["code"] == "unknown_trace"

    def test_metrics_404_when_disabled(self):
        with make_app(telemetry=False) as app:
            with pytest.raises(ServiceError) as excinfo:
                app.metrics_text()
            assert excinfo.value.status == 404
            with pytest.raises(ServiceError):
                app.trace("anything")


# --------------------------------------------------------------------------- #
# Queue-wait accounting and drop attribution (satellite fix)
# --------------------------------------------------------------------------- #
class TestSchedulerAccounting:
    def test_expired_request_counts_as_dropped_before_fold(self):
        telemetry = Telemetry()
        scheduler = RequestScheduler(
            lambda model_id, requests: [None] * len(requests),
            autostart=False,
            telemetry=telemetry,
        )
        late = scheduler.submit(
            GenerateRequest(
                request_id="r-late",
                model_id="m",
                num_rows=1,
                base_seed=1,
                deadline=time.monotonic() - 1.0,
            )
        )
        scheduler.start()
        with pytest.raises(DeadlineExceededError):
            late.result(timeout=10)
        scheduler.close()
        stats = scheduler.stats()
        assert stats.dropped_before_fold == 1
        assert stats.folded_lanes == 0
        assert telemetry.fold_dropped_total.value(reason="expired") == 1
        assert telemetry.requests_total.value(status="failed") == 1
        telemetry.close()

    def test_queue_wait_measured_at_dequeue(self):
        with make_app() as app:
            session = app.create_session("tiny")["session_id"]
            record = app.generate(session, 2)
            trace = app.trace(record.request_id)
            stats = app.scheduler.stats()
        wait_span = next(r for r in trace["spans"] if r["name"] == "queue_wait")
        assert wait_span["end"] - wait_span["start"] == pytest.approx(
            stats.queue_wait_seconds, abs=1e-6
        )
        assert app.telemetry.queue_wait_seconds.count() == 1


# --------------------------------------------------------------------------- #
# Trace-tree integrity under a deterministically forced concurrent fold
# --------------------------------------------------------------------------- #
class _HoldFirstDispatch:
    def __init__(self):
        self._lock = threading.Lock()
        self._first = None
        self.first_seen = threading.Event()
        self.release = threading.Event()

    def __call__(self, request):
        with self._lock:
            if self._first is None:
                self._first = request.request_id
            first = self._first == request.request_id
        if first and not self.release.is_set():
            self.first_seen.set()
            if not self.release.wait(timeout=30):  # pragma: no cover
                raise RuntimeError("fold gate never released")


class TestConcurrentFoldTraces:
    def test_each_folded_lane_gets_a_complete_tree(self):
        seeds = (101, 202, 303)
        gate = _HoldFirstDispatch()
        with make_app(dispatch_hook=gate) as app:
            sessions = {s: app.create_session("tiny")["session_id"] for s in seeds}
            records, failures = {}, []

            def client(seed):
                try:
                    records[seed] = app.generate(sessions[seed], 2, seed=seed)
                except BaseException as exc:  # pragma: no cover
                    failures.append(exc)

            threads = [
                threading.Thread(target=client, args=(seed,)) for seed in seeds
            ]
            threads[0].start()
            assert gate.first_seen.wait(timeout=30)
            for thread in threads[1:]:
                thread.start()
            deadline = time.monotonic() + 30
            while app.scheduler.queue_depth() < len(seeds) - 1:
                assert time.monotonic() < deadline, "requests never queued"
                time.sleep(0.005)
            gate.release.set()
            for thread in threads:
                thread.join(timeout=60)
            assert not failures

            lanes_seen = []
            for seed in seeds:
                trace = app.trace(records[seed].request_id)
                root = assert_single_tree(trace)
                assert root["name"] == "request"
                by_name = {}
                for record in trace["spans"]:
                    by_name.setdefault(record["name"], []).append(record)
                for required in ("queue_wait", "fold", "engine_job", "privacy_test"):
                    assert len(by_name[required]) == 1, (seed, required)
                assert len(by_name["engine_chunk"]) >= 1
                fold = by_name["fold"][0]
                lanes_seen.append(fold["attrs"]["lanes"])
                # chunk spans nest under this trace's engine_job, not a
                # sibling lane's
                engine_id = by_name["engine_job"][0]["span"]
                for chunk in by_name["engine_chunk"]:
                    assert chunk["parent"] == engine_id
            # the held-back pair demonstrably folded
            assert sorted(lanes_seen) == [1, 2, 2]
            stats = app.scheduler.stats()
            assert stats.folded_lanes == len(seeds)
            assert app.telemetry.fold_lanes.count() == 2


# --------------------------------------------------------------------------- #
# SIGKILL chaos round: the trace records the restart; rows stay identical
# --------------------------------------------------------------------------- #
class _FaultyApp(ServiceApp):
    """Injects a worker-kill fault into every engine the pool builds."""

    def set_fault(self, fault):
        self._chaos_fault = fault

    def _build_engine(self, engine_key):
        engine = super()._build_engine(engine_key)
        engine._fault_injector = self._chaos_fault
        return engine


@pytest.mark.chaos
class TestChaosTrace:
    def test_worker_restart_lands_in_trace_and_metrics(self, tmp_path):
        scenario = get_scenario("toy-correlated")
        rows = 24  # ~3 chunks of attempts, so chunk 1 definitely executes

        with ServiceApp(ModelRegistry(), num_workers=2) as app:
            app.publish_model(
                "toy", scenario.dataset(0), scenario.config(), seed=FIT_SEED
            )
            session = app.create_session("toy")["session_id"]
            undisturbed = app.generate(session, rows, seed=101)

        fault = KillWorkerAtChunk(chunk_index=1, marker_dir=str(tmp_path), times=1)
        app = _FaultyApp(ModelRegistry(), num_workers=2)
        app.set_fault(fault)
        try:
            app.publish_model(
                "toy", scenario.dataset(0), scenario.config(), seed=FIT_SEED
            )
            session = app.create_session("toy")["session_id"]
            record = app.generate(session, rows, seed=101)
            assert fault.kills_fired() == 1
            assert_reports_identical(undisturbed.report, record.report)
            np.testing.assert_array_equal(
                undisturbed.report.released_dataset().data,
                record.report.released_dataset().data,
            )
            trace = app.trace(record.request_id)
            assert_single_tree(trace)
            names = [r["name"] for r in trace["spans"]]
            assert "worker_restart" in names
            assert app.telemetry.worker_restarts_total.value() == 1
            assert app.telemetry.chunk_retries_total.value() >= 1
            health = app.healthz()
            assert health["status"] == "ok"
        finally:
            app.close()


# --------------------------------------------------------------------------- #
# Conformance: telemetry on vs off is bit-identical in everything released
# --------------------------------------------------------------------------- #
def _strip_timestamps(ledger):
    return [
        {key: value for key, value in event.items() if key != "timestamp"}
        for event in ledger
    ]


@pytest.mark.conformance_smoke
class TestTelemetryConformance:
    def test_rows_ledger_and_spend_identical_on_vs_off(self):
        results = {}
        for enabled in (True, False):
            with make_app(telemetry=enabled) as app:
                session_id = app.create_session("tiny")["session_id"]
                record = app.generate(session_id, 3, seed=77)
                session = app._session(session_id)
                results[enabled] = {
                    "rows": record.report.released_dataset().data,
                    "spent": session.spent(),
                    "ledger": _strip_timestamps(session.ledger()),
                    "attempts": record.report.num_attempts,
                }
        on, off = results[True], results[False]
        np.testing.assert_array_equal(on["rows"], off["rows"])
        assert on["spent"] == off["spent"]
        assert on["ledger"] == off["ledger"]
        assert on["attempts"] == off["attempts"]
