"""The stdlib JSON/HTTP front end, exercised over a real socket."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.service import ModelRegistry, ServiceApp, build_server
from repro.testing.scenarios import get_scenario

pytestmark = pytest.mark.service

SCENARIO = get_scenario("tiny-n")


@pytest.fixture(scope="module")
def server_url():
    app = ServiceApp(ModelRegistry(), num_workers=1)
    app.publish_model("tiny", SCENARIO.dataset(0), SCENARIO.config(), seed=5)
    server = build_server(app, host="127.0.0.1", port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield f"http://{host}:{port}"
    server.shutdown()
    server.server_close()
    app.close()


def get(url):
    try:
        with urllib.request.urlopen(url, timeout=30) as response:
            return response.status, json.load(response)
    except urllib.error.HTTPError as error:
        return error.code, json.load(error)


def post(url, body):
    request = urllib.request.Request(
        url,
        data=json.dumps(body).encode(),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=60) as response:
            return response.status, json.load(response)
    except urllib.error.HTTPError as error:
        return error.code, json.load(error)


class TestEndpoints:
    def test_healthz(self, server_url):
        status, payload = get(f"{server_url}/healthz")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["models"] == 1

    def test_models(self, server_url):
        status, payload = get(f"{server_url}/models")
        assert status == 200
        (model,) = payload["models"]
        assert model["name"] == "tiny"
        assert model["k"] == SCENARIO.k
        status, payload = get(f"{server_url}/models/tiny")
        assert status == 200
        assert payload["name"] == "tiny"

    def test_session_generate_budget_roundtrip(self, server_url):
        status, session = post(
            f"{server_url}/sessions",
            {"model": "tiny", "tenant": "http", "budget": {"max_rows": 6}},
        )
        assert status == 201
        session_id = session["session_id"]
        assert session["remaining"]["rows"] == 6

        status, page = post(
            f"{server_url}/generate",
            {"session": session_id, "rows": 4, "seed": 9, "limit": 2},
        )
        assert status == 200
        assert page["requested_rows"] == 4
        assert len(page["rows"]) <= 2
        assert page["columns"] == SCENARIO.schema().names
        released = page["released_rows"]

        # Paginate the rest of the release.
        if page["next_offset"] is not None:
            status, second = get(
                f"{server_url}/releases/{page['release_id']}"
                f"?offset={page['next_offset']}&limit=100"
            )
            assert status == 200
            assert len(second["rows"]) == released - len(page["rows"])

        status, budget = get(f"{server_url}/budget?session={session_id}&ledger=1")
        assert status == 200
        assert budget["spent"]["rows"] == released
        assert [e["event"] for e in budget["ledger"]] == ["reserve", "commit"]

    def test_overspend_returns_409_with_remainder(self, server_url):
        _status, session = post(
            f"{server_url}/sessions", {"model": "tiny", "budget": {"max_rows": 1}}
        )
        status, refusal = post(
            f"{server_url}/generate", {"session": session["session_id"], "rows": 5}
        )
        assert status == 409
        assert refusal["code"] == "budget_exceeded"
        assert refusal["remaining"]["rows"] == 1

    def test_streaming_ndjson(self, server_url):
        _status, session = post(f"{server_url}/sessions", {"model": "tiny"})
        request = urllib.request.Request(
            f"{server_url}/generate",
            data=json.dumps(
                {"session": session["session_id"], "rows": 3, "seed": 4, "stream": True}
            ).encode(),
        )
        with urllib.request.urlopen(request, timeout=60) as response:
            assert response.headers["Content-Type"] == "application/x-ndjson"
            lines = [json.loads(line) for line in response.read().splitlines()]
        header, rows = lines[0], lines[1:]
        assert header["requested_rows"] == 3
        assert len(rows) == header["released_rows"]
        assert all(len(row) == len(header["columns"]) for row in rows)

    def test_malformed_integers_are_400_not_500(self, server_url):
        _status, session = post(f"{server_url}/sessions", {"model": "tiny"})
        status, payload = post(
            f"{server_url}/generate",
            {"session": session["session_id"], "rows": 2, "seed": "abc"},
        )
        assert status == 400
        assert payload["code"] == "bad_parameter"
        status, payload = get(f"{server_url}/releases/rel000001?offset=abc")
        assert status in (400, 404)  # bad offset or already-expired release
        assert payload["code"] in ("bad_parameter", "unknown_release")

    def test_unknown_routes_and_ids(self, server_url):
        status, payload = get(f"{server_url}/budget?session=nope")
        assert status == 404
        assert payload["code"] == "unknown_session"
        status, payload = post(f"{server_url}/sessions", {"model": "nope"})
        assert status == 404
        assert payload["code"] == "unknown_model"
        status, payload = post(f"{server_url}/generate", {"session": "x", "rows": "y"})
        assert status == 400
