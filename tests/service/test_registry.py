"""Fit-once model registry: content identity, warm cache, pinned gc."""

import numpy as np
import pytest

from repro.core.run_store import RunStore
from repro.service.registry import ModelRegistry
from repro.testing.scenarios import get_scenario

pytestmark = pytest.mark.service

SCENARIO = get_scenario("tiny-n")


@pytest.fixture
def dataset():
    return SCENARIO.dataset(0)


@pytest.fixture
def config():
    return SCENARIO.config()


class TestFitOnce:
    def test_same_triple_fits_once(self, dataset, config):
        registry = ModelRegistry()
        first = registry.publish("a", dataset, config, seed=1)
        second = registry.publish("b", dataset, config, seed=1)
        assert first.model_id == second.model_id
        assert first.pipeline is second.pipeline  # same warm-cache entry
        assert registry.fits_performed == 1

    def test_different_seed_is_a_different_model(self, dataset, config):
        registry = ModelRegistry()
        first = registry.publish("a", dataset, config, seed=1)
        second = registry.publish("b", dataset, config, seed=2)
        assert first.model_id != second.model_id
        assert registry.fits_performed == 2

    def test_name_reuse_for_different_content_rejected(self, dataset, config):
        registry = ModelRegistry()
        registry.publish("a", dataset, config, seed=1)
        with pytest.raises(ValueError, match="immutable"):
            registry.publish("a", dataset, config, seed=2)

    def test_store_shares_the_fit_across_registries(self, dataset, config, tmp_path):
        store = RunStore(tmp_path / "store")
        first = ModelRegistry(run_store=store)
        model = first.publish("a", dataset, config, seed=1)
        assert first.fits_performed == 1

        # A second registry (e.g. a restarted service) loads the artifact
        # instead of refitting, and serves the identical fitted state.
        second = ModelRegistry(run_store=store)
        again = second.publish("a", dataset, config, seed=1)
        assert second.fits_performed == 0
        assert again.model_id == model.model_id
        assert (
            again.pipeline.accountant.entries == model.pipeline.accountant.entries
        )
        np.testing.assert_array_equal(
            again.pipeline.splits.seeds.data, model.pipeline.splits.seeds.data
        )


class TestWarmCache:
    def test_lru_eviction_rebuilds_transparently(self, dataset, config, tmp_path):
        store = RunStore(tmp_path / "store")
        registry = ModelRegistry(run_store=store, max_cached=1)
        first = registry.publish("a", dataset, config, seed=1)
        registry.publish("b", dataset, config, seed=2)  # evicts "a" from memory
        again = registry.get("a")
        assert again.model_id == first.model_id
        # Rebuilt from the store artifact, not refitted.
        assert registry.fits_performed == 2

    def test_lookup_by_name_and_id(self, dataset, config):
        registry = ModelRegistry()
        model = registry.publish("a", dataset, config, seed=1)
        assert registry.get("a").model_id == model.model_id
        assert registry.get(model.model_id).model_id == model.model_id
        with pytest.raises(KeyError):
            registry.get("missing")

    def test_list_models(self, dataset, config):
        registry = ModelRegistry()
        registry.publish("a", dataset, config, seed=1)
        registry.publish("b", dataset, config, seed=2)
        names = [info["name"] for info in registry.list_models()]
        assert names == ["a", "b"]


class TestPinnedGc:
    def test_published_models_survive_gc(self, dataset, config, tmp_path):
        store = RunStore(tmp_path / "store")
        registry = ModelRegistry(run_store=store)
        model = registry.publish("a", dataset, config, seed=1)
        # Unpinned clutter that gc may evict.
        for index in range(3):
            store.save_artifact(
                RunStore.artifact_key("clutter", {"i": index}), list(range(1000))
            )
        evicted = registry.gc_store(max_bytes=0)
        assert len(evicted) == 3
        assert store.has_artifact(model.model_id)
        # The published model still loads from disk after gc.
        fresh = ModelRegistry(run_store=store)
        assert fresh.publish("a", dataset, config, seed=1).model_id == model.model_id
        assert fresh.fits_performed == 0
