"""Durable budget journal: crash-safe spend accounting across restarts.

A service restart must restore every tenant budget *exactly* — forgetting
spent (ε, δ) would be a privacy violation, not an availability bug.  These
tests drive the real :class:`ServiceApp` against an on-disk journal, restart
it, and check budgets, counters, idempotency records and refunds through the
shared conservation checkers.
"""

import json

import pytest

from repro.service import ModelRegistry, ServiceApp
from repro.service.journal import (
    BudgetJournal,
    JournalCorruptionError,
    read_journal,
)
from repro.testing import truncate_file_tail
from repro.testing.invariants import (
    assert_reports_identical,
    check_accountant_conservation,
)
from repro.testing.scenarios import get_scenario

pytestmark = pytest.mark.service

SCENARIO = get_scenario("tiny-n")


def make_app(journal_path) -> ServiceApp:
    """A fresh service process: same journal, same republished model."""
    app = ServiceApp(ModelRegistry(), num_workers=1, journal=journal_path)
    # publish_model() happens *after* construction, exactly as in `repro
    # serve`: the journaled sessions stay staged until the content-hashed
    # model id is back in the registry, then replay.
    app.publish_model("tiny", SCENARIO.dataset(0), SCENARIO.config(), seed=5)
    return app


# --------------------------------------------------------------------------- #
# The journal file format
# --------------------------------------------------------------------------- #
class TestJournalFile:
    def test_append_writes_one_sorted_json_line_per_event(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with BudgetJournal(path) as journal:
            journal.append({"event": "reserve", "rows": 3})
            journal.append({"event": "commit", "rows": 2})
        lines = path.read_text().splitlines()
        assert [json.loads(line)["event"] for line in lines] == ["reserve", "commit"]
        assert lines[0] == json.dumps({"event": "reserve", "rows": 3}, sort_keys=True)

    def test_fsync_mode_and_idempotent_close(self, tmp_path):
        journal = BudgetJournal(tmp_path / "nested" / "j.jsonl", fsync=True)
        journal.append({"event": "reserve"})
        journal.close()
        journal.close()
        assert read_journal(journal.path) == [{"event": "reserve"}]

    def test_read_missing_journal_is_empty(self, tmp_path):
        assert read_journal(tmp_path / "absent.jsonl") == []

    def test_torn_final_line_is_dropped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text('{"event": "reserve"}\n{"event": "com')
        assert read_journal(path) == [{"event": "reserve"}]

    def test_corruption_before_the_tail_refuses_to_replay(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text('not json at all\n{"event": "reserve"}\n')
        with pytest.raises(JournalCorruptionError):
            read_journal(path)

    def test_non_object_line_refuses_to_replay(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text('[1, 2]\n{"event": "reserve"}\n')
        with pytest.raises(JournalCorruptionError):
            read_journal(path)


# --------------------------------------------------------------------------- #
# Restart durability
# --------------------------------------------------------------------------- #
class TestRestartDurability:
    def test_budgets_and_counters_survive_a_restart(self, tmp_path):
        journal = tmp_path / "journal.jsonl"
        with make_app(journal) as app:
            info = app.create_session("tiny", tenant="acme", budget={"max_rows": 8})
            session_id = info["session_id"]
            record = app.generate(session_id, rows=3, seed=7)
            before = app.budget(session_id)

        with make_app(journal) as app:
            after = app.budget(session_id)
            assert after["spent"] == before["spent"]
            assert after["remaining"] == before["remaining"]
            assert after["reserved"]["rows"] == 0
            assert after["tenant"] == "acme"
            # Counters continue past the journaled history instead of
            # colliding with it.
            fresh = app.create_session("tiny")
            assert fresh["session_id"] != session_id
            next_record = app.generate(session_id, rows=2, seed=9)
            assert next_record.release_id != record.release_id
            assert next_record.request_id != record.request_id
            check_accountant_conservation(app._session(session_id).accountant)

    def test_unsettled_reservation_is_refunded_on_replay(self, tmp_path):
        journal = tmp_path / "journal.jsonl"
        with make_app(journal) as app:
            info = app.create_session("tiny", budget={"max_rows": 8})
            session_id = info["session_id"]
            committed = app.generate(session_id, rows=2, seed=3).num_released
            # Simulate a crash between reserve and commit: the hold is
            # journaled, the settlement never happens.
            app._session(session_id).reserve(f"{session_id}-r99999", 5)

        with make_app(journal) as app:
            budget = app.budget(session_id)
            assert budget["reserved"]["rows"] == 0
            assert budget["spent"]["rows"] == committed
            assert budget["remaining"]["rows"] == 8 - committed
            check_accountant_conservation(app._session(session_id).accountant)
        refunds = [
            event
            for event in read_journal(journal)
            if event.get("event") == "cancel"
            and event.get("reason") == "refund_on_replay"
        ]
        assert len(refunds) == 1
        assert refunds[0]["request_id"] == f"{session_id}-r99999"

    def test_replay_does_not_duplicate_journal_events(self, tmp_path):
        journal = tmp_path / "journal.jsonl"
        with make_app(journal) as app:
            session_id = app.create_session("tiny", budget={"max_rows": 8})[
                "session_id"
            ]
            app.generate(session_id, rows=2, seed=3)
        baseline = [
            event
            for event in read_journal(journal)
            if event.get("event") in ("reserve", "commit")
        ]
        with make_app(journal):
            pass  # replay only
        replayed = [
            event
            for event in read_journal(journal)
            if event.get("event") in ("reserve", "commit")
        ]
        assert replayed == baseline

    @pytest.mark.chaos
    def test_torn_journal_tail_still_restores_the_budget(self, tmp_path):
        journal = tmp_path / "journal.jsonl"
        with make_app(journal) as app:
            session_id = app.create_session("tiny", budget={"max_rows": 8})[
                "session_id"
            ]
            committed = app.generate(session_id, rows=2, seed=3).num_released
        # A crash mid-append tears the final (release-meta) line; the budget
        # events before it must still replay exactly.
        truncate_file_tail(journal, drop_bytes=10)
        with make_app(journal) as app:
            budget = app.budget(session_id)
            assert budget["spent"]["rows"] == committed
            assert budget["reserved"]["rows"] == 0


# --------------------------------------------------------------------------- #
# Idempotent generate
# --------------------------------------------------------------------------- #
class TestIdempotency:
    def test_same_key_replays_without_spending(self, tmp_path):
        with make_app(tmp_path / "journal.jsonl") as app:
            session_id = app.create_session("tiny", budget={"max_rows": 10})[
                "session_id"
            ]
            first = app.generate(session_id, rows=3, seed=5, idempotency_key="k1")
            again = app.generate(session_id, rows=3, seed=5, idempotency_key="k1")
            assert again.release_id == first.release_id
            assert_reports_identical(first.report, again.report)
            assert app.budget(session_id)["spent"]["rows"] == first.num_released

    def test_idempotency_survives_a_restart_with_zero_extra_spend(self, tmp_path):
        journal = tmp_path / "journal.jsonl"
        with make_app(journal) as app:
            session_id = app.create_session("tiny", budget={"max_rows": 10})[
                "session_id"
            ]
            first = app.generate(session_id, rows=3, seed=5, idempotency_key="k1")
            spent = app.budget(session_id)["spent"]

        with make_app(journal) as app:
            replayed = app.generate(session_id, rows=3, seed=5, idempotency_key="k1")
            # The in-memory release cache died with the process; the rows are
            # regenerated from the recorded base seed — bit-identical — and
            # charged nothing.
            assert replayed.release_id == first.release_id
            assert_reports_identical(first.report, replayed.report)
            assert app.budget(session_id)["spent"] == spent

    def test_keys_are_scoped_per_session(self, tmp_path):
        with make_app(tmp_path / "journal.jsonl") as app:
            first_session = app.create_session("tiny")["session_id"]
            second_session = app.create_session("tiny")["session_id"]
            one = app.generate(first_session, rows=2, seed=5, idempotency_key="k")
            two = app.generate(second_session, rows=2, seed=5, idempotency_key="k")
            assert one.release_id != two.release_id
