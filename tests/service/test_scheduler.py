"""Coalescing request scheduler: batching, ordering, error propagation."""

import threading
import time

import pytest

from repro.service.scheduler import GenerateRequest, RequestScheduler

pytestmark = pytest.mark.service


def request(index: int) -> GenerateRequest:
    return GenerateRequest(
        request_id=f"r{index}", model_id="m", num_rows=1, base_seed=index
    )


class TestCoalescing:
    def test_queued_burst_coalesces_into_one_batch(self):
        executed = []
        with RequestScheduler(
            lambda req: executed.append(req.request_id), autostart=False
        ) as scheduler:
            futures = [scheduler.submit(request(index)) for index in range(4)]
            scheduler.start()
            for future in futures:
                future.result(timeout=10)
            stats = scheduler.stats()
        assert executed == ["r0", "r1", "r2", "r3"]  # submission order preserved
        assert stats.batches == 1
        assert stats.max_batch == 4
        assert stats.coalesced == 4

    def test_max_batch_caps_a_drain(self):
        with RequestScheduler(lambda req: None, max_batch=2, autostart=False) as scheduler:
            futures = [scheduler.submit(request(index)) for index in range(5)]
            scheduler.start()
            for future in futures:
                future.result(timeout=10)
            stats = scheduler.stats()
        assert stats.max_batch <= 2
        assert stats.completed == 5

    def test_concurrent_submitters_all_complete(self):
        def slowish(req):
            time.sleep(0.002)
            return req.base_seed * 10

        results = {}
        with RequestScheduler(slowish) as scheduler:

            def client(index):
                results[index] = scheduler.submit(request(index)).result(timeout=30)

            threads = [threading.Thread(target=client, args=(i,)) for i in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert results == {index: index * 10 for index in range(8)}


class TestFailures:
    def test_executor_error_reaches_the_caller_only(self):
        def explode_on_two(req):
            if req.base_seed == 2:
                raise RuntimeError("boom")
            return req.base_seed

        with RequestScheduler(explode_on_two, autostart=False) as scheduler:
            futures = [scheduler.submit(request(index)) for index in range(4)]
            scheduler.start()
            assert futures[0].result(timeout=10) == 0
            with pytest.raises(RuntimeError, match="boom"):
                futures[2].result(timeout=10)
            assert futures[3].result(timeout=10) == 3
            stats = scheduler.stats()
        assert stats.failed == 1
        assert stats.completed == 3

    def test_submit_after_close_rejected(self):
        scheduler = RequestScheduler(lambda req: None)
        scheduler.close()
        with pytest.raises(RuntimeError, match="closed"):
            scheduler.submit(request(0))

    def test_close_is_idempotent(self):
        scheduler = RequestScheduler(lambda req: None)
        scheduler.close()
        scheduler.close()
