"""Service conformance: serving is bit-identical to the direct pipeline.

For three scenario families (randomized-test DP, deterministic-test with
early-termination knobs, tiny-n edge case) the suite:

* publishes the scenario through the service's fit-once registry and proves
  the published privacy ledger equals a direct
  :class:`~repro.core.pipeline.SynthesisPipeline` fit's ledger entry-for-entry;
* serves N ``/generate`` requests **concurrently** and proves each one's
  released rows and full per-attempt accounting are bit-identical to running
  the same request serially through a direct engine on the direct fit (the
  shared :func:`~repro.testing.invariants.assert_reports_identical` checker);
* proves the session's accountant spend equals the serial ground truth
  (rows × the Theorem 1 per-row rate) and conserves under composition;
* proves an over-budget request is refused with the budget remainder and
  releases nothing — never a partial over-budget release.
"""

import threading

import numpy as np
import pytest

from repro.core.engine import SynthesisEngine
from repro.core.pipeline import SynthesisPipeline
from repro.privacy.plausible_deniability import theorem1_guarantee
from repro.service import ModelRegistry, ServiceApp, ServiceError, SessionBudget
from repro.testing.invariants import (
    assert_reports_identical,
    check_accountant_conservation,
    check_theorem1_bounds,
)
from repro.testing.scenarios import get_scenario

pytestmark = pytest.mark.service

#: Three schema families crossing the privacy-test axes: randomized DP test,
#: deterministic test with early-termination knobs, and the tiny-n edge case.
FAMILIES = ("toy-correlated", "high-cardinality", "tiny-n")
FIT_SEED = 17
REQUEST_SEEDS = (101, 202, 303)


def _direct_fit(scenario):
    pipeline = SynthesisPipeline(
        scenario.dataset(0), scenario.config(), rng=np.random.default_rng(FIT_SEED)
    )
    pipeline.fit()
    return pipeline


def _direct_reports(scenario, pipeline, rows):
    """The serial ground truth: one direct engine run per request seed."""
    config = scenario.config()
    reports = {}
    with SynthesisEngine(
        pipeline.model,
        pipeline.splits.seeds,
        config.privacy,
        num_workers=1,
        chunk_size=config.chunk_size,
        batch_size=config.batch_size,
    ) as engine:
        for seed in REQUEST_SEEDS:
            reports[seed] = engine.generate(rows, base_seed=seed)
    return reports


@pytest.mark.parametrize("name", FAMILIES)
def test_concurrent_service_matches_serial_pipeline(name):
    scenario = get_scenario(name)
    rows = scenario.target_released
    direct_pipeline = _direct_fit(scenario)
    direct = _direct_reports(scenario, direct_pipeline, rows)

    with ServiceApp(ModelRegistry(), num_workers=1) as app:
        app.publish_model(name, scenario.dataset(0), scenario.config(), seed=FIT_SEED)
        published = app.model(name)

        # Fit-phase ledger: the published model spent exactly what a direct
        # pipeline fit spends, entry for entry.
        assert (
            published.pipeline.accountant.entries
            == direct_pipeline.accountant.entries
        )

        session_id = app.create_session(name, tenant="conformance")["session_id"]
        records = {}
        failures = []
        barrier = threading.Barrier(len(REQUEST_SEEDS))

        def client(seed):
            barrier.wait()  # maximize interleaving
            try:
                records[seed] = app.generate(session_id, rows, seed=seed)
            except BaseException as exc:  # pragma: no cover - surfaced below
                failures.append(exc)

        threads = [
            threading.Thread(target=client, args=(seed,)) for seed in REQUEST_SEEDS
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures

        # Every concurrently served request is bit-identical — full
        # per-attempt accounting, not just the released rows — to its serial
        # direct-engine ground truth.
        for seed in REQUEST_SEEDS:
            assert_reports_identical(
                direct[seed], records[seed].report, context=f"request seed {seed}"
            )
            np.testing.assert_array_equal(
                direct[seed].released_dataset().data,
                records[seed].report.released_dataset().data,
            )
            check_theorem1_bounds(
                records[seed].report,
                published.params,
                num_seed_records=len(published.pipeline.splits.seeds),
            )

        # Accountant spend equals the serial ground truth.
        session = app._session(session_id)
        total_released = sum(direct[seed].num_released for seed in REQUEST_SEEDS)
        spent = session.spent()
        assert spent["rows"] == total_released
        eps_row, delta_row = published.per_row_cost()
        assert spent["epsilon"] == pytest.approx(total_released * eps_row)
        assert spent["delta"] == pytest.approx(total_released * delta_row)
        if published.params.epsilon0 is not None:
            expected = theorem1_guarantee(
                published.params.k, published.params.gamma, published.params.epsilon0
            )
            assert (eps_row, delta_row) == expected[:2]
        check_accountant_conservation(session.accountant)


@pytest.mark.parametrize("name", FAMILIES)
def test_rerequest_with_same_seed_is_reproducible(name):
    """A request is a pure function of (model, seed, rows) — replay matches."""
    scenario = get_scenario(name)
    rows = scenario.target_released
    with ServiceApp(ModelRegistry(), num_workers=1) as app:
        app.publish_model(name, scenario.dataset(0), scenario.config(), seed=FIT_SEED)
        first_session = app.create_session(name)["session_id"]
        second_session = app.create_session(name)["session_id"]
        first = app.generate(first_session, rows, seed=REQUEST_SEEDS[0])
        second = app.generate(second_session, rows, seed=REQUEST_SEEDS[0])
        assert_reports_identical(first.report, second.report, context="replay")


def test_overspend_is_refused_with_remainder_never_partial():
    scenario = get_scenario("toy-correlated")
    with ServiceApp(ModelRegistry(), num_workers=1) as app:
        app.publish_model(
            "toy", scenario.dataset(0), scenario.config(), seed=FIT_SEED
        )
        published = app.model("toy")
        eps_row, _delta_row = published.per_row_cost()
        assert eps_row > 0  # the randomized test carries a real per-row cost

        # Budget fits exactly one 2-row request.
        budget = {"epsilon": 2 * eps_row * 1.0000001, "max_rows": 2}
        session_id = app.create_session("toy", budget=budget)["session_id"]
        first = app.generate(session_id, 2, seed=1)
        assert first.num_released <= 2

        before = app._session(session_id).spent()
        with pytest.raises(ServiceError) as info:
            app.generate(session_id, 2, seed=2)
        assert info.value.status == 409
        assert info.value.code == "budget_exceeded"
        remaining = info.value.payload["remaining"]
        assert remaining["rows"] == 2 - first.num_released
        # The refused request spent nothing and released nothing.
        assert app._session(session_id).spent() == before
        events = [e["event"] for e in app._session(session_id).ledger()]
        assert events.count("refusal") == 1


def test_release_history_is_bounded():
    scenario = get_scenario("tiny-n")
    with ServiceApp(ModelRegistry(), num_workers=1, max_releases=2) as app:
        app.publish_model("tiny", scenario.dataset(0), scenario.config())
        session_id = app.create_session("tiny")["session_id"]
        records = [app.generate(session_id, 2, seed=seed) for seed in (1, 2, 3)]
        # The newest two survive; the oldest expired from the history.
        app.release(records[1].release_id)
        app.release(records[2].release_id)
        with pytest.raises(ServiceError) as info:
            app.release(records[0].release_id)
        assert info.value.status == 404


def test_k_deniability_floor_refuses_session_creation():
    scenario = get_scenario("tiny-n")  # model k = 4
    with ServiceApp(ModelRegistry(), num_workers=1) as app:
        app.publish_model("tiny", scenario.dataset(0), scenario.config())
        with pytest.raises(ServiceError) as info:
            app.create_session("tiny", budget={"min_k": 50})
        assert info.value.status == 409
        assert info.value.code == "k_floor_violation"
