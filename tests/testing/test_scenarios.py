"""Tests for the conformance scenario registry."""

import numpy as np
import pytest

from repro.testing.scenarios import (
    Scenario,
    correlated_toy_matrix,
    get_scenario,
    iter_scenarios,
    register_scenario,
    scenario_names,
    toy_schema,
)


class TestRegistry:
    def test_at_least_six_scenarios_registered(self):
        assert len(scenario_names()) >= 6

    def test_lookup_by_name(self):
        for name in scenario_names():
            assert get_scenario(name).name == name

    def test_unknown_name_rejected_with_candidates(self):
        with pytest.raises(KeyError, match="tiny-n"):
            get_scenario("no-such-scenario")

    def test_duplicate_registration_rejected(self):
        existing = get_scenario("tiny-n")
        with pytest.raises(ValueError, match="already registered"):
            register_scenario(existing)

    def test_tag_filtering(self):
        dp_names = scenario_names(tags={"dp"})
        assert dp_names
        assert all("dp" in get_scenario(name).tags for name in dp_names)
        assert scenario_names(tags={"no-such-tag"}) == []

    def test_smoke_subset_is_nonempty_and_proper(self):
        smoke = scenario_names(tags={"smoke"})
        assert smoke
        assert len(smoke) < len(scenario_names())

    def test_family_diversity(self):
        """The registry spans the schema families the roadmap asks for."""
        attribute_counts = {len(s.schema()) for s in iter_scenarios()}
        assert min(attribute_counts) <= 2  # narrow
        assert max(attribute_counts) >= 8  # wide
        max_cardinality = max(
            max(s.schema().cardinalities) for s in iter_scenarios()
        )
        assert max_cardinality >= 40  # high-cardinality
        assert any(s.num_records <= 100 for s in iter_scenarios())  # tiny-n
        assert any(s.epsilon0 is None for s in iter_scenarios())
        assert any(s.epsilon0 is not None for s in iter_scenarios())
        assert any(s.max_check_plausible is not None for s in iter_scenarios())


class TestScenarioDatasets:
    @pytest.mark.parametrize("name", scenario_names())
    def test_dataset_is_pure_function_of_seed(self, name):
        scenario = get_scenario(name)
        first = scenario.dataset(seed=3)
        second = scenario.dataset(seed=3)
        other = scenario.dataset(seed=4)
        assert np.array_equal(first.data, second.data)
        assert not np.array_equal(first.data, other.data)

    @pytest.mark.parametrize("name", scenario_names())
    def test_dataset_matches_declared_shape(self, name):
        scenario = get_scenario(name)
        dataset = scenario.dataset(seed=0)
        assert len(dataset) == scenario.num_records
        assert dataset.num_attributes == len(scenario.schema())

    def test_datasets_differ_across_scenarios_for_one_seed(self):
        fingerprints = set()
        for scenario in iter_scenarios():
            fingerprints.add(scenario.dataset(seed=0).data.tobytes())
        assert len(fingerprints) == len(scenario_names())

    @pytest.mark.parametrize("name", scenario_names())
    def test_seed_split_supports_k(self, name):
        scenario = get_scenario(name)
        fit = scenario.fit(seed=0)
        assert len(fit.seeds) >= scenario.k


class TestScenarioFit:
    def test_fit_exposes_pipeline_state(self):
        fit = get_scenario("tiny-n").fit(seed=0)
        assert fit.model is fit.pipeline.model
        assert fit.params.k == get_scenario("tiny-n").k
        assert fit.splits.total_records == get_scenario("tiny-n").num_records

    def test_dp_scenarios_record_spend_and_non_dp_do_not(self):
        dp_fit = get_scenario("toy-correlated").fit(seed=0)
        assert dp_fit.accountant.entries
        free_fit = get_scenario("tiny-n").fit(seed=0)
        assert free_fit.accountant.entries == []

    def test_engine_knob_reaches_the_learner(self):
        scenario = get_scenario("narrow-uniform")
        assert scenario.config("reference").model.structure.engine == "reference"
        assert scenario.config("vectorized").model.structure.engine == "vectorized"

    def test_experiment_context_uses_scenario_dataset(self):
        scenario = get_scenario("tiny-n")
        context = scenario.experiment_context(seed=0)
        assert np.array_equal(context.dataset.data, scenario.dataset(0).data)
        assert context.k == scenario.k
        # A deterministic-test scenario stays deterministic in the bridge.
        assert scenario.epsilon0 is None
        assert context.epsilon0 is None
        assert not context.privacy_params().is_randomized
        # The injected dataset's fingerprint keys the context's artifacts.
        from repro.core.run_store import dataset_fingerprint

        payload = context._artifact_payload()
        assert payload["dataset"] == dataset_fingerprint(scenario.dataset(0))


class TestHoistedBuilders:
    def test_toy_schema_shape(self):
        schema = toy_schema()
        assert schema.names == ["age", "color", "size", "label"]
        assert schema.cardinalities == [20, 3, 2, 2]

    def test_correlated_toy_matrix_is_deterministic_per_rng_seed(self):
        first = correlated_toy_matrix(100, np.random.default_rng(0))
        second = correlated_toy_matrix(100, np.random.default_rng(0))
        assert np.array_equal(first, second)

    def test_correlated_toy_matrix_has_the_planted_correlation(self):
        matrix = correlated_toy_matrix(2000, np.random.default_rng(0))
        agreement = np.mean((matrix[:, 0] >= 10) == matrix[:, 2].astype(bool))
        assert agreement > 0.7


class TestAtScale:
    def test_native_scale_is_identity(self):
        scenario = get_scenario("toy-correlated")
        assert scenario.at_scale(scenario.num_records) is scenario

    def test_rejects_nonpositive_sizes(self):
        with pytest.raises(ValueError, match="positive"):
            get_scenario("toy-correlated").at_scale(0)

    def test_k_capped_by_bucket_population(self):
        scenario = get_scenario("toy-correlated")
        scaled = scenario.at_scale(2000)
        assert scaled.num_records == 2000
        # seeds = 1100, max cardinality 20: cap = 1100 // 40 = 27, well below
        # the linear rescaling 80 * 2000 / 600 = 267.
        assert scaled.k == 27
        assert scaled.k < round(scenario.k * 2000 / scenario.num_records)

    def test_k_never_below_floor(self):
        scaled = get_scenario("toy-correlated").at_scale(20)
        assert scaled.k == 2

    def test_privacy_test_releases_at_2000_records(self):
        """Regression: the native k = 80 rejected every candidate at n = 2000
        (the learned chain turns near-deterministic and every plausible-seed
        count lands near seeds / 20 = 55); the retuned k must keep the
        service benchmark releasing rows."""
        from repro.core.pipeline import SynthesisPipeline
        from repro.datasets.dataset import Dataset

        scenario = get_scenario("toy-correlated").at_scale(2000)
        dataset = Dataset(
            toy_schema(), correlated_toy_matrix(2000, np.random.default_rng(11))
        )
        pipeline = SynthesisPipeline(
            dataset, config=scenario.config(), rng=np.random.default_rng(2)
        )
        pipeline.fit()
        report = pipeline.mechanism.run_attempts(
            64, np.random.default_rng(5), batch_size=16
        )
        assert sum(attempt.test.passed for attempt in report.attempts) > 0


class TestScenarioValidation:
    def test_custom_scenario_round_trip_without_registration(self):
        scenario = Scenario(
            name="ad-hoc",
            description="unregistered scratch scenario",
            num_records=80,
            schema_builder=toy_schema,
            matrix_builder=correlated_toy_matrix,
            k=4,
            epsilon0=None,
            omega=2,
            total_epsilon=None,
        )
        fit = scenario.fit(seed=0)
        report = fit.pipeline.generate(num_records=2, max_attempts=64)
        assert report.num_attempts <= 64
