"""Tests for the golden-run regression store and its CLI."""

import json

import pytest

from repro.testing.golden import (
    DEFAULT_GOLDEN_PATH,
    check_goldens,
    format_drifts,
    record_goldens,
    scenario_digest,
    write_drift_report,
)
from repro.testing.scenarios import get_scenario

SMOKE = [get_scenario("tiny-n")]


@pytest.fixture()
def golden_file(tmp_path):
    path = tmp_path / "golden.json"
    record_goldens(path, SMOKE, seeds=(0,))
    return path


class TestDigests:
    def test_digest_is_deterministic(self):
        scenario = get_scenario("tiny-n")
        assert scenario_digest(scenario, seed=0) == scenario_digest(scenario, seed=0)

    def test_digest_depends_on_seed(self):
        scenario = get_scenario("tiny-n")
        first = scenario_digest(scenario, seed=0)
        second = scenario_digest(scenario, seed=1)
        assert first["dataset"] != second["dataset"]
        assert first["released"] != second["released"]

    def test_digest_fields(self):
        digest = scenario_digest(get_scenario("tiny-n"), seed=0)
        assert set(digest) == {
            "dataset",
            "structure",
            "ledger",
            "released",
            "accounting",
            "attempts",
            "released_count",
        }


class TestRecordCheck:
    def test_round_trip_has_no_drift(self, golden_file):
        assert check_goldens(golden_file, SMOKE, seeds=(0,)) == []

    def test_perturbed_digest_detected(self, golden_file):
        document = json.loads(golden_file.read_text())
        entry = document["entries"]["tiny-n@seed0"]
        entry["released"] = "0" * 64  # deliberate perturbation
        golden_file.write_text(json.dumps(document))
        drifts = check_goldens(golden_file, SMOKE, seeds=(0,))
        assert [(d.entry, d.field) for d in drifts] == [("tiny-n@seed0", "released")]
        assert "drifted" in format_drifts(drifts)

    def test_missing_entry_detected(self, golden_file):
        document = json.loads(golden_file.read_text())
        del document["entries"]["tiny-n@seed0"]
        golden_file.write_text(json.dumps(document))
        drifts = check_goldens(golden_file, SMOKE, seeds=(0,))
        assert len(drifts) == 1 and drifts[0].expected is None

    def test_corrupted_golden_file_is_diagnosed(self, golden_file):
        from repro.core.run_store import RunStoreCorruptionError

        golden_file.write_text(golden_file.read_text()[:25])  # truncate mid-JSON
        with pytest.raises(RunStoreCorruptionError, match="golden file"):
            check_goldens(golden_file, SMOKE, seeds=(0,))
        with pytest.raises(RunStoreCorruptionError, match="golden file"):
            record_goldens(golden_file, SMOKE, seeds=(0,))

    def test_version_bump_flags_everything(self, golden_file):
        document = json.loads(golden_file.read_text())
        document["version"] = 999
        golden_file.write_text(json.dumps(document))
        drifts = check_goldens(golden_file, SMOKE, seeds=(0,))
        assert drifts and drifts[0].field == "version"

    def test_drift_report_is_machine_readable(self, golden_file, tmp_path):
        document = json.loads(golden_file.read_text())
        document["entries"]["tiny-n@seed0"]["attempts"] = -1
        golden_file.write_text(json.dumps(document))
        drifts = check_goldens(golden_file, SMOKE, seeds=(0,))
        out = tmp_path / "drift.json"
        write_drift_report(drifts, out)
        loaded = json.loads(out.read_text())
        assert loaded[0]["entry"] == "tiny-n@seed0"
        assert loaded[0]["field"] == "attempts"


class TestCommittedGoldens:
    """The committed golden file matches a fresh run of the smoke scenarios.

    The full-registry check runs through the CLI in CI; re-verifying the
    smoke subset here keeps the committed file honest under plain pytest.
    """

    @pytest.mark.conformance
    @pytest.mark.conformance_smoke
    def test_smoke_scenarios_match_committed_goldens(self):
        from repro.testing.scenarios import scenario_names

        smoke = [get_scenario(name) for name in scenario_names(tags={"smoke"})]
        assert smoke
        drifts = check_goldens(DEFAULT_GOLDEN_PATH, smoke, seeds=(0, 1))
        assert drifts == [], format_drifts(drifts)

    def test_committed_file_covers_every_registered_scenario(self):
        from repro.testing.scenarios import scenario_names

        document = json.loads(DEFAULT_GOLDEN_PATH.read_text())
        recorded = {key.split("@")[0] for key in document["entries"]}
        assert recorded == set(scenario_names())


class TestCli:
    def test_check_passes_on_committed_file(self):
        from repro.testing.__main__ import main

        assert main(["check", "--scenario", "tiny-n", "--seeds", "0"]) == 0

    def test_check_fails_and_writes_report_on_drift(self, golden_file, tmp_path, capsys):
        from repro.testing.__main__ import main

        document = json.loads(golden_file.read_text())
        document["entries"]["tiny-n@seed0"]["structure"] = "f" * 64
        golden_file.write_text(json.dumps(document))
        report = tmp_path / "drift.json"
        status = main(
            [
                "check",
                "--path",
                str(golden_file),
                "--scenario",
                "tiny-n",
                "--seeds",
                "0",
                "--drift-report",
                str(report),
            ]
        )
        assert status == 1
        assert report.exists()
        assert "drifted" in capsys.readouterr().out

    def test_record_writes_requested_subset(self, tmp_path):
        from repro.testing.__main__ import main

        path = tmp_path / "subset.json"
        status = main(
            ["record", "--path", str(path), "--scenario", "tiny-n", "--seeds", "0"]
        )
        assert status == 0
        document = json.loads(path.read_text())
        assert list(document["entries"]) == ["tiny-n@seed0"]

    def test_subset_record_merges_into_existing_file(self, tmp_path):
        # Re-recording one scenario must not discard the other scenarios'
        # committed digests, and the merged file must stay drift-free under
        # a default (file-seeded) check.
        path = tmp_path / "golden.json"
        smoke = [get_scenario("tiny-n"), get_scenario("narrow-uniform")]
        record_goldens(path, smoke, seeds=(0, 1))
        before = json.loads(path.read_text())["entries"]
        record_goldens(path, [get_scenario("tiny-n")], seeds=(0, 1))
        document = json.loads(path.read_text())
        assert set(document["entries"]) == set(before)
        assert document["entries"]["narrow-uniform@seed0"] == before["narrow-uniform@seed0"]
        assert document["seeds"] == [0, 1]
        assert check_goldens(path, smoke) == []

    @pytest.mark.parametrize("seeds", [(0,), (0, 1, 2)], ids=["narrower", "wider"])
    def test_subset_record_rejects_a_different_seed_grid(self, tmp_path, seeds):
        # A narrower grid leaves the re-recorded scenario's other-seed digests
        # stale; a wider one leaves the other scenarios' new seeds missing.
        # Either way the next full check reports spurious drift, so the grid
        # only changes via a full record.
        path = tmp_path / "golden.json"
        smoke = [get_scenario("tiny-n"), get_scenario("narrow-uniform")]
        record_goldens(path, smoke, seeds=(0, 1))
        before = path.read_text()
        with pytest.raises(ValueError, match="grid"):
            record_goldens(path, [get_scenario("tiny-n")], seeds=seeds)
        assert path.read_text() == before  # nothing was clobbered

    def test_subset_record_rejects_version_mismatch(self, tmp_path):
        path = tmp_path / "golden.json"
        record_goldens(path, SMOKE, seeds=(0,))
        document = json.loads(path.read_text())
        document["version"] = 0
        path.write_text(json.dumps(document))
        before = path.read_text()
        with pytest.raises(ValueError, match="full record"):
            record_goldens(path, SMOKE, seeds=(0,))
        assert path.read_text() == before
