"""Conformance: approximate privacy-test decisions are bit-identical to exact.

The approximate (BlinkDB-mode) test is a pure latency optimization — its
release decisions must reproduce the exact scan's bit for bit, for every
scenario family and for both the deterministic Privacy Test 1 and the
Laplace-noised Privacy Test 2.  This suite runs the full registry through
both mechanisms and compares everything release-relevant: decisions,
thresholds, partitions, seeds, candidates and released rows — plus, at the
pipeline level, the privacy-ledger digest and released-rows digest computed
with the golden-store recipes.

Scan accounting (``records_checked``, ``escalated``, and the lower-bound
counts of early-decided candidates) legitimately differs between the paths;
the decision invariant ``passed == (count >= threshold)`` must still hold on
both sides.

The default ``min_records`` would bypass sampling on these toy scenarios, so
the suite pins a small config — the point is to exercise the sampling rounds,
the escalation path, and the threshold stream discipline, not the default
tuning.
"""

import dataclasses

import numpy as np
import pytest

from repro.core.mechanism import SynthesisMechanism
from repro.core.pipeline import SynthesisPipeline
from repro.core.run_store import RunStore
from repro.privacy.approximate import ApproximateTestConfig
from repro.testing.scenarios import get_scenario, scenario_names

#: Small enough to sample on few-hundred-record scenarios; several rounds so
#: near-threshold candidates exercise escalation.
APPROX_CONFIG = ApproximateTestConfig(
    initial_sample=64, growth_factor=4, max_rounds=3, min_records=1, strata=8
)

MODES = ("deterministic", "randomized")
SCENARIOS = tuple(scenario_names())
SMOKE_SCENARIOS = frozenset(scenario_names(tags={"smoke"}))


def _scenario_for_mode(name: str, mode: str):
    scenario = get_scenario(name)
    epsilon0 = None if mode == "deterministic" else 1.0
    if scenario.epsilon0 == epsilon0:
        return scenario
    return dataclasses.replace(scenario, epsilon0=epsilon0)


def _cells():
    for name in SCENARIOS:
        for mode in MODES:
            marks = [pytest.mark.conformance]
            if name in SMOKE_SCENARIOS:
                marks.append(pytest.mark.conformance_smoke)
            yield pytest.param(name, mode, marks=marks, id=f"{name}-{mode}")


def test_matrix_covers_the_full_registry():
    assert len(SCENARIOS) >= 7
    assert len(list(_cells())) == len(SCENARIOS) * 2


@pytest.mark.parametrize("name,mode", list(_cells()))
def test_approximate_decisions_bit_identical(name, mode):
    scenario = _scenario_for_mode(name, mode)
    fit = scenario.fit(seed=0)
    exact = SynthesisMechanism(fit.model, fit.seeds, fit.params)
    approximate = SynthesisMechanism(
        fit.model, fit.seeds, fit.params, approximate=APPROX_CONFIG
    )

    exact_report = exact.run_attempts(
        scenario.attempts, np.random.default_rng(7), batch_size=scenario.batch_size
    )
    approx_report = approximate.run_attempts(
        scenario.attempts, np.random.default_rng(7), batch_size=scenario.batch_size
    )

    exact_arrays = exact_report.to_arrays()
    approx_arrays = approx_report.to_arrays()
    for field in (
        "seed_indices", "candidates", "passed", "thresholds", "partition_indices"
    ):
        assert np.array_equal(exact_arrays[field], approx_arrays[field]), (
            f"{name}/{mode}: approximate run diverged from exact in {field!r}"
        )
    assert np.array_equal(
        exact_report.released_dataset().data, approx_report.released_dataset().data
    )

    # Scan accounting may differ, but never the decision invariant: counts
    # are certain lower bounds (early-decided) or exact (escalated), so
    # comparing against the recorded threshold reproduces the decision.
    counts = approx_arrays["plausible_seeds"]
    assert np.all(counts <= exact_arrays["plausible_seeds"])
    assert np.array_equal(
        counts >= approx_arrays["thresholds"], approx_arrays["passed"]
    )
    escalated = approx_arrays["escalated"]
    assert np.array_equal(
        counts[escalated], exact_arrays["plausible_seeds"][escalated]
    )
    assert np.all(
        approx_arrays["records_checked"] <= exact_arrays["records_checked"]
    )


@pytest.mark.parametrize("name,mode", list(_cells()))
def test_pipeline_release_and_ledger_digests_match(name, mode):
    """End to end through the config knob: released rows and privacy-ledger
    digests (golden-store recipes) are identical with and without the
    approximate accuracy contract."""
    scenario = _scenario_for_mode(name, mode)
    digests = {}
    for label, approximate in (("exact", None), ("approximate", APPROX_CONFIG)):
        config = dataclasses.replace(scenario.config(), approximate=approximate)
        pipeline = SynthesisPipeline(
            scenario.dataset(0), config=config, rng=scenario._rng(0, 1)
        )
        pipeline.fit()
        report = pipeline.generate(
            scenario.target_released, max_attempts=scenario.attempts * 4
        )
        digests[label] = {
            "released": RunStore.artifact_key(
                "golden-released", {"rows": report.released_dataset().data}
            ),
            "ledger": RunStore.artifact_key(
                "golden-ledger",
                {
                    "entries": [
                        [e.label, e.epsilon, e.delta, e.count, e.scope]
                        for e in pipeline.accountant.entries
                    ]
                },
            ),
            "released_count": report.num_released,
        }
    assert digests["exact"] == digests["approximate"]
