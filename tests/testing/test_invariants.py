"""Tests for the invariant checkers: they pass on conforming runs and fail loudly
on deliberately broken ones."""

import dataclasses

import numpy as np
import pytest

from repro.core.results import SynthesisAttempt, SynthesisReport
from repro.privacy.accountant import PrivacyAccountant
from repro.privacy.plausible_deniability import (
    PlausibleDeniabilityParams,
    PrivacyTestResult,
)
from repro.testing.invariants import (
    InvariantViolation,
    assert_reports_identical,
    check_accountant_conservation,
    check_batched_mechanism_parity,
    check_engine_parity,
    check_rng_reproducibility,
    check_structure_engine_equivalence,
    check_theorem1_bounds,
    report_accounting,
)
from repro.testing.scenarios import get_scenario


@pytest.fixture(scope="module")
def tiny_fit():
    return get_scenario("tiny-n").fit(seed=0)


def _mutated_report(report: SynthesisReport) -> SynthesisReport:
    """A copy of ``report`` with one candidate value flipped."""
    attempts = list(report.attempts)
    victim = attempts[0]
    candidate = victim.candidate.copy()
    candidate[0] = (candidate[0] + 1) % 2
    attempts[0] = SynthesisAttempt(
        seed_index=victim.seed_index, candidate=candidate, test=victim.test
    )
    return SynthesisReport(schema=report.schema, attempts=attempts)


class TestReportComparison:
    def test_identical_reports_pass(self, tiny_fit):
        scenario = tiny_fit.scenario
        report = tiny_fit.pipeline.mechanism.run_attempts(
            16, np.random.default_rng(0), batch_size=scenario.batch_size
        )
        assert_reports_identical(report, report)
        assert report_accounting(report)["passed"] == [
            attempt.released for attempt in report.attempts
        ]

    def test_single_flipped_cell_detected(self, tiny_fit):
        report = tiny_fit.pipeline.mechanism.run_attempts(
            16, np.random.default_rng(0), batch_size=4
        )
        with pytest.raises(InvariantViolation, match="candidates"):
            assert_reports_identical(report, _mutated_report(report))


class TestEngineParityChecker:
    def test_vacuous_comparison_rejected(self, tiny_fit):
        # No candidate engines and no worker count > 1: nothing would be
        # compared, so the checker must refuse instead of passing vacuously.
        scenario = tiny_fit.scenario
        with pytest.raises(ValueError, match="vacuous"):
            check_engine_parity(
                tiny_fit.model,
                tiny_fit.seeds,
                tiny_fit.params,
                base_seed=0,
                num_attempts=scenario.attempts,
                chunk_size=scenario.chunk_size,
                batch_size=scenario.batch_size,
                worker_counts=(1,),
            )

    def test_rejects_ambiguous_mode(self, tiny_fit):
        with pytest.raises(ValueError, match="exactly one"):
            check_engine_parity(
                tiny_fit.model, tiny_fit.seeds, tiny_fit.params,
                num_attempts=8, num_released=2,
            )
        with pytest.raises(ValueError, match="exactly one"):
            check_engine_parity(tiny_fit.model, tiny_fit.seeds, tiny_fit.params)

    def test_rejects_mismatched_chunk_grid(self, tiny_fit):
        from repro.core.engine import SynthesisEngine

        with SynthesisEngine(
            tiny_fit.model, tiny_fit.seeds, tiny_fit.params, chunk_size=32
        ) as engine:
            with pytest.raises(ValueError, match="chunk grid"):
                check_engine_parity(
                    tiny_fit.model, tiny_fit.seeds, tiny_fit.params,
                    num_attempts=8, chunk_size=16, engines=[engine],
                )

    def test_rejects_mismatched_batch_size(self, tiny_fit):
        # Batch size is part of the RNG layout too; a correct engine on a
        # different batching must be rejected up front, not reported as a
        # parity violation.
        from repro.core.engine import SynthesisEngine

        with SynthesisEngine(
            tiny_fit.model, tiny_fit.seeds, tiny_fit.params,
            chunk_size=16, batch_size=4,
        ) as engine:
            with pytest.raises(ValueError, match="batch_size"):
                check_engine_parity(
                    tiny_fit.model, tiny_fit.seeds, tiny_fit.params,
                    num_attempts=8, chunk_size=16, batch_size=8, engines=[engine],
                )


class TestRngReproducibilityChecker:
    def test_pure_run_passes(self, tiny_fit):
        def run(rng):
            return tiny_fit.pipeline.mechanism.run_attempts(12, rng, batch_size=4)

        report = check_rng_reproducibility(run, seed=9)
        assert report.num_attempts == 12

    def test_impure_run_detected(self, tiny_fit):
        shared_rng = np.random.default_rng(0)

        def impure_run(rng):
            # Ignores the checker-provided rng: consumes a shared stream, so
            # every repeat sees different candidates.
            return tiny_fit.pipeline.mechanism.run_attempts(12, shared_rng, batch_size=4)

        with pytest.raises(InvariantViolation, match="repeat 1"):
            check_rng_reproducibility(impure_run, seed=9)

    def test_requires_two_repeats(self, tiny_fit):
        with pytest.raises(ValueError, match="at least 2"):
            check_rng_reproducibility(lambda rng: None, repeats=1)


class TestBatchedParityChecker:
    def test_conforming_mechanism_passes(self, tiny_fit):
        attempts = check_batched_mechanism_parity(
            tiny_fit.pipeline.mechanism, np.random.default_rng(3), batch_size=20
        )
        assert len(attempts) == 20

    def test_limited_scan_counts_are_not_compared(self):
        # Under max_check_plausible each path draws its own random scan
        # subset, so pointwise count equality does not hold for correct code;
        # the checker must only compare the (pure) partition indices.
        from repro.core.mechanism import SynthesisMechanism
        from repro.privacy.plausible_deniability import PlausibleDeniabilityParams

        fit = get_scenario("high-cardinality").fit(seed=0)
        params = PlausibleDeniabilityParams(k=8, gamma=4.0, max_check_plausible=30)
        mechanism = SynthesisMechanism(fit.model, fit.seeds, params)
        check_batched_mechanism_parity(mechanism, np.random.default_rng(0), batch_size=20)

    def test_broken_fast_counts_detected(self, tiny_fit, monkeypatch):
        mechanism = tiny_fit.pipeline.mechanism
        original = type(mechanism)._fast_batch_counts

        def off_by_one(self, seed_indices, candidates):
            counts, partitions, checked, saturated = original(
                self, seed_indices, candidates
            )
            return counts + 1, partitions, checked, saturated

        monkeypatch.setattr(type(mechanism), "_fast_batch_counts", off_by_one)
        with pytest.raises(InvariantViolation, match="plausible count"):
            check_batched_mechanism_parity(
                mechanism, np.random.default_rng(3), batch_size=10
            )

    def test_saturation_and_scan_alignment_compared(self):
        # max_plausible stops the scan early on both paths; the batched path
        # must report the same records_checked and saturation flag as the
        # sequential reference, and the checker must verify that.
        from repro.core.mechanism import SynthesisMechanism
        from repro.privacy.plausible_deniability import PlausibleDeniabilityParams

        fit = get_scenario("tiny-n").fit(seed=0)
        params = dataclasses.replace(fit.params, max_plausible=4)
        mechanism = SynthesisMechanism(fit.model, fit.seeds, params)
        attempts = check_batched_mechanism_parity(
            mechanism, np.random.default_rng(5), batch_size=12
        )
        assert any(attempt.test.count_saturated for attempt in attempts)

    def test_broken_saturation_flag_detected(self, monkeypatch):
        from repro.core.mechanism import SynthesisMechanism
        from repro.privacy.plausible_deniability import DeterministicPrivacyTest

        fit = get_scenario("tiny-n").fit(seed=0)
        params = dataclasses.replace(fit.params, max_plausible=4)
        mechanism = SynthesisMechanism(fit.model, fit.seeds, params)
        original = DeterministicPrivacyTest.run_batch

        def flipped_saturation(self, seed_probabilities, probability_matrix, rng):
            results = original(self, seed_probabilities, probability_matrix, rng)
            return [
                dataclasses.replace(result, count_saturated=not result.count_saturated)
                for result in results
            ]

        monkeypatch.setattr(DeterministicPrivacyTest, "run_batch", flipped_saturation)
        with pytest.raises(InvariantViolation, match="saturation"):
            check_batched_mechanism_parity(
                mechanism, np.random.default_rng(5), batch_size=12
            )

    def test_approximate_mechanism_decisions_still_compared(self):
        # In approximate mode early-decided counts are lower bounds, so the
        # checker must skip count comparison but still require bit-identical
        # pass/fail decisions against the exact reference path.
        from repro.core.mechanism import SynthesisMechanism
        from repro.privacy.approximate import ApproximateTestConfig

        fit = get_scenario("tiny-n").fit(seed=0)
        mechanism = SynthesisMechanism(
            fit.model,
            fit.seeds,
            fit.params,
            approximate=ApproximateTestConfig(
                initial_sample=16, min_records=1, strata=4
            ),
        )
        attempts = check_batched_mechanism_parity(
            mechanism, np.random.default_rng(7), batch_size=12
        )
        assert len(attempts) == 12


class TestAccountantConservationChecker:
    def test_empty_ledger_passes_vacuously(self):
        assert check_accountant_conservation(PrivacyAccountant()) is None

    def test_real_ledger_passes(self):
        fit = get_scenario("toy-correlated").fit(seed=0)
        total = check_accountant_conservation(fit.accountant)
        assert total is not None and total[0] > 0

    def test_synthetic_multi_scope_ledger_passes(self):
        accountant = PrivacyAccountant()
        accountant.spend("a", 0.2, 1e-9, count=5, scope="left")
        accountant.spend("b", 0.4, 0.0, count=1, scope="left")
        accountant.spend("c", 0.1, 0.0, count=50, scope="right")
        epsilon, delta = check_accountant_conservation(accountant)
        assert epsilon == pytest.approx(0.2 * 5 + 0.4 + 0.1 * 50)

    def test_tampered_composition_detected(self, monkeypatch):
        accountant = PrivacyAccountant()
        accountant.spend("a", 0.2, count=3, scope="left")

        def under_report(self, scope, use_advanced=True):
            return (0.0, 0.0)

        monkeypatch.setattr(PrivacyAccountant, "scope_guarantee", under_report)
        with pytest.raises(InvariantViolation, match="does not equal"):
            check_accountant_conservation(accountant)


class TestTheorem1Checker:
    @staticmethod
    def _report(schema, results):
        attempts = [
            SynthesisAttempt(
                seed_index=0,
                candidate=np.zeros(len(schema), dtype=np.int64),
                test=result,
            )
            for result in results
        ]
        return SynthesisReport(schema=schema, attempts=attempts)

    def test_real_run_passes(self, tiny_fit):
        report = tiny_fit.pipeline.mechanism.run_attempts(
            24, np.random.default_rng(1), batch_size=4
        )
        check_theorem1_bounds(report, tiny_fit.params, num_seed_records=len(tiny_fit.seeds))

    def test_inconsistent_deterministic_decision_detected(self, tiny_fit):
        params = tiny_fit.params
        bad = PrivacyTestResult(
            passed=True,
            plausible_seeds=params.k - 1,  # below k yet "passed"
            partition_index=0,
            threshold=float(params.k),
            records_checked=10,
        )
        report = self._report(tiny_fit.seeds.schema, [bad])
        with pytest.raises(InvariantViolation, match="contradicts"):
            check_theorem1_bounds(report, params)

    def test_released_without_a_bucket_detected(self, tiny_fit):
        params = tiny_fit.params
        bad = PrivacyTestResult(
            passed=False,
            plausible_seeds=0,
            partition_index=-1,  # the seed could not have generated y
            threshold=float(params.k),
            records_checked=10,
        )
        report = self._report(tiny_fit.seeds.schema, [bad])
        with pytest.raises(InvariantViolation, match="bucket"):
            check_theorem1_bounds(report, params)

    def test_overscanning_detected(self, tiny_fit):
        params = tiny_fit.params
        bad = PrivacyTestResult(
            passed=False,
            plausible_seeds=1,
            partition_index=0,
            threshold=float(params.k),
            records_checked=10_000,
        )
        report = self._report(tiny_fit.seeds.schema, [bad])
        with pytest.raises(InvariantViolation, match="scanned"):
            check_theorem1_bounds(report, params, num_seed_records=len(tiny_fit.seeds))

    def test_randomized_threshold_semantics(self):
        fit = get_scenario("toy-correlated").fit(seed=0)
        report = fit.pipeline.mechanism.run_attempts(
            24, np.random.default_rng(2), batch_size=8
        )
        check_theorem1_bounds(report, fit.params, num_seed_records=len(fit.seeds))


class TestStructureEquivalenceChecker:
    def test_non_dp_equivalence_passes(self):
        dataset = get_scenario("toy-correlated").dataset(seed=0)
        structure = check_structure_engine_equivalence(dataset)
        assert structure.num_attributes == 4

    def test_dp_equivalence_passes(self):
        dataset = get_scenario("toy-correlated").dataset(seed=0)
        structure = check_structure_engine_equivalence(
            dataset, seed=7, epsilon_entropy=0.5, epsilon_count=0.1
        )
        assert structure.num_attributes == 4

    def test_dp_requires_seed(self):
        dataset = get_scenario("tiny-n").dataset(seed=0)
        with pytest.raises(ValueError, match="seed"):
            check_structure_engine_equivalence(dataset, epsilon_entropy=0.5)

    def test_perturbed_entropies_detected(self, monkeypatch):
        from repro.generative.structure import StructureLearner

        dataset = get_scenario("toy-correlated").dataset(seed=0)
        original = StructureLearner._entropy_tables_vectorized

        def nudged(self, data):
            h_raw, h_bkt, h_raw_bkt, h_bkt_bkt = original(self, data)
            return h_raw + 1e-9, h_bkt, h_raw_bkt, h_bkt_bkt

        monkeypatch.setattr(StructureLearner, "_entropy_tables_vectorized", nudged)
        with pytest.raises(InvariantViolation, match="bit-identical"):
            check_structure_engine_equivalence(dataset)
