"""Scenario-matrix conformance suite.

The full cross-product — every registered scenario × both structure-learning
engines × {1, 2} engine workers × 2 seeds — runs the shared invariant
checkers end to end.  Cells are marked ``conformance``; a small subset
(scenarios tagged ``smoke``, seed 0) additionally carries
``conformance_smoke`` and is what the CI workflow gates on
(``pytest -m conformance_smoke``).  Locally the whole matrix runs as part of
the plain test suite.
"""

import numpy as np
import pytest

from repro.testing.invariants import (
    check_accountant_conservation,
    check_batched_mechanism_parity,
    check_engine_parity,
    check_rng_reproducibility,
    check_structure_engine_equivalence,
    check_theorem1_bounds,
)
from repro.testing.scenarios import get_scenario, scenario_names

ENGINES = ("vectorized", "reference")
WORKER_COUNTS = (1, 2)
SEEDS = (0, 1)
SCENARIOS = tuple(scenario_names())
SMOKE_SCENARIOS = frozenset(scenario_names(tags={"smoke"}))

#: Fit results are deterministic per (scenario, engine, seed); cache them so
#: the worker-count dimension reuses the same fitted model.
_FIT_CACHE: dict = {}


def _fit(name: str, engine: str, seed: int):
    key = (name, engine, seed)
    if key not in _FIT_CACHE:
        _FIT_CACHE[key] = get_scenario(name).fit(seed=seed, engine=engine)
    return _FIT_CACHE[key]


def _matrix_cells():
    for name in SCENARIOS:
        for engine in ENGINES:
            for workers in WORKER_COUNTS:
                for seed in SEEDS:
                    marks = [pytest.mark.conformance]
                    if name in SMOKE_SCENARIOS and seed == 0:
                        marks.append(pytest.mark.conformance_smoke)
                    yield pytest.param(
                        name,
                        engine,
                        workers,
                        seed,
                        marks=marks,
                        id=f"{name}-{engine}-w{workers}-s{seed}",
                    )


def test_matrix_meets_the_acceptance_floor():
    """The declared cross-product is at least 6 scenarios × 2 × 2 × 2."""
    assert len(SCENARIOS) >= 6
    assert len(ENGINES) == 2
    assert tuple(WORKER_COUNTS) == (1, 2)
    assert len(SEEDS) == 2


@pytest.mark.parametrize("name,engine,workers,seed", list(_matrix_cells()))
def test_scenario_matrix_cell(name, engine, workers, seed):
    scenario = get_scenario(name)
    fit = _fit(name, engine, seed)

    if workers == 1:
        # Serial cell: the run must be a pure function of its seed, every
        # attempt must obey the privacy-test semantics, batched Mechanism 1
        # must match single-record re-evaluation, and the ledger must
        # conserve its recorded spend.
        from repro.core.engine import SynthesisEngine

        with SynthesisEngine(
            fit.model,
            fit.seeds,
            fit.params,
            num_workers=1,
            chunk_size=scenario.chunk_size,
            batch_size=scenario.batch_size,
        ) as serial_engine:
            reference = serial_engine.run_attempts(scenario.attempts, base_seed=seed)
        check_rng_reproducibility(
            lambda rng: fit.pipeline.mechanism.run_attempts(
                scenario.chunk_size, rng, batch_size=scenario.batch_size
            ),
            seed=seed,
        )
        check_theorem1_bounds(reference, fit.params, num_seed_records=len(fit.seeds))
        check_batched_mechanism_parity(
            fit.pipeline.mechanism,
            np.random.default_rng(seed),
            batch_size=scenario.batch_size,
        )
        check_accountant_conservation(fit.accountant)
    else:
        # Pooled cell: the spawn-context worker pool must be bit-identical to
        # the serial chunked reference, in both fixed-budget and until-N
        # mode.  One pool serves both comparisons — spawn startup is the
        # dominant cost of this suite, so every pooled cell pays it once.
        from repro.core.engine import SynthesisEngine

        with SynthesisEngine(
            fit.model,
            fit.seeds,
            fit.params,
            num_workers=workers,
            chunk_size=scenario.chunk_size,
            batch_size=scenario.batch_size,
        ) as pool:
            pool.start()
            check_engine_parity(
                fit.model,
                fit.seeds,
                fit.params,
                base_seed=seed,
                num_attempts=scenario.attempts,
                chunk_size=scenario.chunk_size,
                batch_size=scenario.batch_size,
                worker_counts=(),
                engines=[pool],
            )
            reference = check_engine_parity(
                fit.model,
                fit.seeds,
                fit.params,
                base_seed=seed,
                num_released=scenario.target_released,
                max_attempts=scenario.attempts * 4,
                chunk_size=scenario.chunk_size,
                batch_size=scenario.batch_size,
                worker_counts=(),
                engines=[pool],
            )
        assert reference.num_released <= scenario.target_released
        if reference.num_released == scenario.target_released:
            # Truncation at the Nth release: the final recorded attempt is it.
            assert reference.attempts[-1].released


@pytest.mark.conformance
@pytest.mark.parametrize("name", SCENARIOS)
@pytest.mark.parametrize("seed", SEEDS)
def test_structure_engines_agree(name, seed):
    """Bit-exact entropies + identical structures (non-DP); identical spend
    and stream position (DP) — for every scenario's data distribution."""
    dataset = get_scenario(name).dataset(seed=seed)
    check_structure_engine_equivalence(dataset)
    check_structure_engine_equivalence(
        dataset, seed=seed, epsilon_entropy=0.5, epsilon_count=0.1
    )
