"""Tests for the ML evaluation helpers (accuracy, agreement, distinguishing game)."""

import numpy as np
import pytest

from repro.datasets.dataset import Dataset
from repro.ml.evaluation import agreement_rate, distinguishing_game, evaluate_classifier
from repro.ml.tree import DecisionTreeClassifier


class TestEvaluateClassifier:
    def test_trains_and_scores(self, toy_dataset):
        train = toy_dataset.head(1500)
        test = toy_dataset.take(np.arange(1500, len(toy_dataset)))
        accuracy = evaluate_classifier(
            DecisionTreeClassifier(max_depth=5, random_state=0), train, test, "label"
        )
        assert 0.5 < accuracy <= 1.0


class TestAgreementRate:
    def test_identical_classifiers_agree_fully(self, toy_dataset):
        train = toy_dataset.head(1000)
        first = DecisionTreeClassifier(max_depth=5, random_state=0)
        second = DecisionTreeClassifier(max_depth=5, random_state=0)
        from repro.ml.encoding import attribute_features

        features, labels, _ = attribute_features(train, "label")
        first.fit(features, labels)
        second.fit(features, labels)
        assert agreement_rate(first, second, toy_dataset, "label") == 1.0

    def test_agreement_between_different_models_is_below_one(self, toy_dataset):
        from repro.ml.encoding import attribute_features

        train = toy_dataset.head(1000)
        features, labels, _ = attribute_features(train, "label")
        deep = DecisionTreeClassifier(max_depth=8, random_state=0).fit(features, labels)
        constant_model = DecisionTreeClassifier(max_depth=1, min_samples_leaf=499, random_state=0)
        constant_model.fit(features, labels)
        rate = agreement_rate(deep, constant_model, toy_dataset, "label")
        assert 0.0 < rate < 1.0


class TestDistinguishingGame:
    def test_identical_datasets_are_indistinguishable(self, toy_dataset, rng):
        accuracy = distinguishing_game(
            DecisionTreeClassifier(max_depth=6, random_state=0),
            real=toy_dataset,
            synthetic=toy_dataset,
            train_size_per_class=600,
            test_size_per_class=300,
            rng=rng,
        )
        assert abs(accuracy - 0.5) < 0.1

    def test_obviously_fake_data_is_easily_distinguished(self, toy_dataset, toy_schema, rng):
        fake = Dataset(
            toy_schema,
            np.column_stack(
                [
                    np.full(1000, 19, dtype=np.int64),
                    np.zeros(1000, dtype=np.int64),
                    np.zeros(1000, dtype=np.int64),
                    np.ones(1000, dtype=np.int64),
                ]
            ),
        )
        accuracy = distinguishing_game(
            DecisionTreeClassifier(max_depth=6, random_state=0),
            real=toy_dataset,
            synthetic=fake,
            train_size_per_class=500,
            test_size_per_class=200,
            rng=rng,
        )
        assert accuracy > 0.9

    def test_requires_enough_records(self, toy_dataset, rng):
        with pytest.raises(ValueError):
            distinguishing_game(
                DecisionTreeClassifier(),
                real=toy_dataset,
                synthetic=toy_dataset.head(10),
                train_size_per_class=100,
                test_size_per_class=50,
                rng=rng,
            )

    def test_rejects_non_positive_sizes(self, toy_dataset, rng):
        with pytest.raises(ValueError):
            distinguishing_game(
                DecisionTreeClassifier(), toy_dataset, toy_dataset, 0, 10, rng
            )
