"""Tests for the Chaudhuri et al. DP-ERM mechanisms."""

import numpy as np
import pytest

from repro.ml.dp_erm import DPTrainingConfig, objective_perturbation, output_perturbation
from repro.ml.encoding import normalize_rows


def erm_data(num_records=500, seed=0):
    rng = np.random.default_rng(seed)
    features = normalize_rows(rng.normal(size=(num_records, 4)))
    weights = np.array([1.0, -1.0, 0.5, 0.0])
    labels = np.where(features @ weights > 0, 1.0, -1.0)
    return features, labels


def erm_accuracy(classifier, features, labels):
    predictions = np.sign(classifier.decision_function(features))
    predictions[predictions == 0] = 1.0
    return float(np.mean(predictions == labels))


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            DPTrainingConfig(epsilon=0.0)
        with pytest.raises(ValueError):
            DPTrainingConfig(regularization=0.0)
        with pytest.raises(ValueError):
            DPTrainingConfig(loss="tree")
        with pytest.raises(ValueError):
            DPTrainingConfig(huber_h=0.0)

    def test_curvature_constants(self):
        assert DPTrainingConfig(loss="logistic").curvature_constant == pytest.approx(0.25)
        assert DPTrainingConfig(loss="svm", huber_h=0.5).curvature_constant == pytest.approx(1.0)

    def test_make_classifier_matches_loss(self):
        from repro.ml.linear import LinearSVMClassifier, LogisticRegressionClassifier

        assert isinstance(DPTrainingConfig(loss="logistic").make_classifier(), LogisticRegressionClassifier)
        assert isinstance(DPTrainingConfig(loss="svm").make_classifier(), LinearSVMClassifier)


@pytest.mark.parametrize("trainer", [output_perturbation, objective_perturbation])
@pytest.mark.parametrize("loss", ["logistic", "svm"])
class TestMechanisms:
    def test_returns_usable_classifier(self, trainer, loss):
        features, labels = erm_data()
        config = DPTrainingConfig(epsilon=2.0, regularization=1e-2, loss=loss)
        classifier = trainer(features, labels, config, np.random.default_rng(0))
        assert classifier.weights is not None
        assert classifier.decision_function(features).shape == (len(labels),)

    def test_large_epsilon_preserves_accuracy(self, trainer, loss):
        features, labels = erm_data(800)
        config = DPTrainingConfig(epsilon=50.0, regularization=1e-3, loss=loss)
        classifier = trainer(features, labels, config, np.random.default_rng(1))
        assert erm_accuracy(classifier, features, labels) > 0.85

    def test_tiny_epsilon_destroys_the_model(self, trainer, loss):
        features, labels = erm_data(300)
        config = DPTrainingConfig(epsilon=1e-4, regularization=1e-3, loss=loss)
        accuracies = [
            erm_accuracy(
                trainer(features, labels, config, np.random.default_rng(seed)), features, labels
            )
            for seed in range(5)
        ]
        # With essentially no budget the released model is close to random.
        assert np.mean(accuracies) < 0.8

    def test_randomness_matters(self, trainer, loss):
        features, labels = erm_data(300)
        config = DPTrainingConfig(epsilon=1.0, regularization=1e-3, loss=loss)
        first = trainer(features, labels, config, np.random.default_rng(1))
        second = trainer(features, labels, config, np.random.default_rng(2))
        assert not np.allclose(first.weights, second.weights)


class TestInputValidation:
    def test_rejects_unnormalized_features(self):
        rng = np.random.default_rng(0)
        features = rng.normal(size=(50, 3)) * 10
        labels = np.where(features[:, 0] > 0, 1.0, -1.0)
        config = DPTrainingConfig()
        with pytest.raises(ValueError, match="norm"):
            output_perturbation(features, labels, config, rng)

    def test_rejects_non_binary_labels(self):
        features, _ = erm_data(50)
        labels = np.arange(50, dtype=np.float64)
        with pytest.raises(ValueError):
            objective_perturbation(features, labels, DPTrainingConfig(), np.random.default_rng(0))

    def test_rejects_empty_dataset(self):
        with pytest.raises(ValueError):
            output_perturbation(
                np.zeros((0, 3)), np.zeros(0), DPTrainingConfig(), np.random.default_rng(0)
            )

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            output_perturbation(
                np.zeros((5, 3)), np.zeros(4), DPTrainingConfig(), np.random.default_rng(0)
            )


class TestOutputPerturbationNoiseScale:
    def test_noise_scale_shrinks_with_more_data_and_budget(self):
        config_small = DPTrainingConfig(epsilon=0.5, regularization=1e-3)
        config_large = DPTrainingConfig(epsilon=5.0, regularization=1e-3)
        features, labels = erm_data(2000, seed=3)
        deviations = {}
        for name, config in (("small", config_small), ("large", config_large)):
            non_private = config.make_classifier()
            baseline = non_private.train_weights(features, labels)
            noisy = output_perturbation(features, labels, config, np.random.default_rng(0))
            deviations[name] = np.linalg.norm(noisy.weights - baseline)
        assert deviations["large"] < deviations["small"]
