"""Tests for feature encoding."""

import numpy as np
import pytest

from repro.datasets.dataset import Dataset
from repro.datasets.schema import Attribute, AttributeType, Schema
from repro.ml.encoding import (
    attribute_features,
    normalize_rows,
    one_hot_encode,
    prepare_erm_data,
)


class TestAttributeFeatures:
    def test_splits_target_from_features(self, toy_dataset):
        features, labels, target_index = attribute_features(toy_dataset, "label")
        assert target_index == 3
        assert features.shape == (len(toy_dataset), 3)
        assert np.array_equal(labels, toy_dataset.column("label"))

    def test_accepts_integer_target(self, toy_dataset):
        features, labels, target_index = attribute_features(toy_dataset, 0)
        assert target_index == 0
        assert features.shape[1] == 3


class TestOneHot:
    def test_categorical_columns_expand(self, toy_dataset):
        encoded = one_hot_encode(toy_dataset, exclude="label")
        # age is numerical (1 column), color has 3, size has 2 -> 6 columns.
        assert encoded.shape == (len(toy_dataset), 6)

    def test_numerical_column_scaled_to_unit_interval(self, toy_dataset):
        encoded = one_hot_encode(toy_dataset)
        assert encoded[:, 0].min() >= 0.0
        assert encoded[:, 0].max() <= 1.0

    def test_indicator_blocks_sum_to_one(self, toy_dataset):
        encoded = one_hot_encode(toy_dataset, exclude="label")
        color_block = encoded[:, 1:4]
        assert np.allclose(color_block.sum(axis=1), 1.0)

    def test_without_exclusion_keeps_all_attributes(self, toy_dataset):
        assert one_hot_encode(toy_dataset).shape[1] == 1 + 3 + 2 + 2


class TestNormalizeRows:
    def test_norms_bounded_by_max_norm(self, rng):
        matrix = rng.normal(size=(50, 8)) * 10
        normalized = normalize_rows(matrix)
        assert np.all(np.linalg.norm(normalized, axis=1) <= 1.0 + 1e-9)

    def test_small_rows_unchanged(self):
        matrix = np.array([[0.1, 0.2], [0.0, 0.0]])
        assert np.allclose(normalize_rows(matrix), matrix)

    def test_validation(self):
        with pytest.raises(ValueError):
            normalize_rows(np.zeros((2, 2)), max_norm=0.0)
        with pytest.raises(ValueError):
            normalize_rows(np.zeros(3))


class TestEdgeCases:
    """Unseen categories, single-category columns and empty splits."""

    @pytest.fixture()
    def degenerate_schema(self):
        return Schema(
            [
                Attribute("constant", AttributeType.CATEGORICAL, ("only",)),
                Attribute("scalar", AttributeType.NUMERICAL, (7,)),
                Attribute("target", AttributeType.CATEGORICAL, ("no", "yes")),
            ]
        )

    def test_unseen_category_at_transform_time_raises(self, toy_schema):
        # Synthetic/test records must be encodable under the training schema;
        # a value outside the domain fails loudly at encode time rather than
        # producing a bogus indicator column downstream.
        with pytest.raises(ValueError, match="not in the domain"):
            toy_schema["color"].encode(["red", "purple"])
        with pytest.raises(ValueError, match="not in the domain"):
            Dataset.from_records(toy_schema, [[0, "purple", "small", "no"]])

    def test_out_of_range_codes_rejected_by_dataset(self, toy_schema):
        bad = np.zeros((1, 4), dtype=np.int64)
        bad[0, 1] = 3  # color has cardinality 3
        with pytest.raises(ValueError, match="outside"):
            Dataset(toy_schema, bad)

    def test_single_category_column_encodes_constant_block(self, degenerate_schema):
        dataset = Dataset(degenerate_schema, np.zeros((5, 3), dtype=np.int64))
        encoded = one_hot_encode(dataset, exclude="target")
        # constant -> one always-on indicator; scalar -> one column scaled by
        # max(1, cardinality - 1) = 1, so the constant code 0 stays 0.
        assert encoded.shape == (5, 2)
        assert np.array_equal(encoded[:, 0], np.ones(5))
        assert np.array_equal(encoded[:, 1], np.zeros(5))

    def test_single_category_target_rejected_by_erm(self, degenerate_schema):
        dataset = Dataset(degenerate_schema, np.zeros((5, 3), dtype=np.int64))
        with pytest.raises(ValueError, match="binary target"):
            prepare_erm_data(dataset, "constant")

    def test_empty_split_round_trips_every_encoder(self, toy_schema):
        empty = Dataset(toy_schema, np.empty((0, 4), dtype=np.int64))
        features, labels, target_index = attribute_features(empty, "label")
        assert features.shape == (0, 3)
        assert labels.shape == (0,)
        assert target_index == 3
        encoded = one_hot_encode(empty, exclude="label")
        assert encoded.shape == (0, 6)
        erm_features, erm_labels = prepare_erm_data(empty, "label")
        assert erm_features.shape == (0, 6)
        assert erm_labels.shape == (0,)
        assert normalize_rows(encoded).shape == (0, 6)

    def test_excluding_the_only_attribute_yields_zero_columns(self):
        schema = Schema([Attribute("only", AttributeType.CATEGORICAL, ("a", "b"))])
        dataset = Dataset(schema, np.zeros((4, 1), dtype=np.int64))
        assert one_hot_encode(dataset, exclude="only").shape == (4, 0)


class TestPrepareErmData:
    def test_labels_are_plus_minus_one(self, toy_dataset):
        features, labels = prepare_erm_data(toy_dataset, "label")
        assert set(np.unique(labels)) <= {-1.0, 1.0}
        assert features.shape[0] == len(toy_dataset)

    def test_rows_have_unit_norm_at_most(self, toy_dataset):
        features, _ = prepare_erm_data(toy_dataset, "label")
        assert np.all(np.linalg.norm(features, axis=1) <= 1.0 + 1e-9)

    def test_requires_binary_target(self, toy_dataset):
        with pytest.raises(ValueError):
            prepare_erm_data(toy_dataset, "color")
