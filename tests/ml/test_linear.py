"""Tests for the logistic-regression and linear-SVM trainers."""

import numpy as np
import pytest

from repro.ml.linear import (
    LinearSVMClassifier,
    LogisticRegressionClassifier,
    huber_hinge_loss_gradient,
    logistic_loss_gradient,
)


def separable_data(num_records=400, seed=0):
    rng = np.random.default_rng(seed)
    features = rng.normal(size=(num_records, 3)) * 0.3
    weights = np.array([1.0, -0.5, 0.25])
    labels = (features @ weights > 0).astype(np.int64)
    return features, labels


class TestLossFunctions:
    def test_logistic_loss_at_zero_margin(self):
        losses, derivatives = logistic_loss_gradient(np.array([0.0]))
        assert losses[0] == pytest.approx(np.log(2))
        assert derivatives[0] == pytest.approx(-0.5)

    def test_logistic_loss_decreasing_in_margin(self):
        losses, _ = logistic_loss_gradient(np.array([-2.0, 0.0, 2.0]))
        assert losses[0] > losses[1] > losses[2]

    def test_huber_hinge_regions(self):
        margins = np.array([-1.0, 1.0, 2.0])
        losses, derivatives = huber_hinge_loss_gradient(margins, huber_h=0.5)
        assert losses[0] == pytest.approx(2.0)  # linear region: 1 - margin
        assert derivatives[0] == -1.0
        assert 0.0 < losses[1] < 1.0  # quadratic band around margin 1
        assert losses[2] == 0.0  # beyond 1 + h: no loss
        assert derivatives[2] == 0.0

    def test_huber_hinge_continuity_at_band_edges(self):
        h = 0.5
        eps = 1e-6
        for edge in (1.0 - h, 1.0 + h):
            below, _ = huber_hinge_loss_gradient(np.array([edge - eps]), h)
            above, _ = huber_hinge_loss_gradient(np.array([edge + eps]), h)
            assert below[0] == pytest.approx(above[0], abs=1e-4)

    def test_huber_hinge_rejects_bad_h(self):
        with pytest.raises(ValueError):
            huber_hinge_loss_gradient(np.array([0.0]), huber_h=0.0)


@pytest.mark.parametrize("classifier_class", [LogisticRegressionClassifier, LinearSVMClassifier])
class TestLinearClassifiers:
    def test_learns_a_separable_problem(self, classifier_class):
        features, labels = separable_data()
        classifier = classifier_class(regularization=1e-4, num_iterations=300)
        classifier.fit(features, labels)
        assert classifier.score(features, labels) > 0.9

    def test_predictions_use_original_label_values(self, classifier_class):
        features, labels = separable_data()
        shifted_labels = labels + 5  # classes {5, 6}
        classifier = classifier_class().fit(features, shifted_labels)
        assert set(np.unique(classifier.predict(features))) <= {5, 6}

    def test_requires_exactly_two_classes(self, classifier_class):
        features, _ = separable_data(60)
        labels = np.arange(60) % 3
        with pytest.raises(ValueError):
            classifier_class().fit(features, labels)

    def test_decision_function_sign_matches_prediction(self, classifier_class):
        features, labels = separable_data()
        classifier = classifier_class().fit(features, labels)
        scores = classifier.decision_function(features)
        predictions = classifier.predict(features)
        assert np.all((scores >= 0) == (predictions == 1))

    def test_predict_before_fit_raises(self, classifier_class):
        with pytest.raises(RuntimeError):
            classifier_class().predict(np.zeros((1, 3)))

    def test_strong_regularization_shrinks_weights(self, classifier_class):
        features, labels = separable_data()
        weak = classifier_class(regularization=1e-6).fit(features, labels)
        strong = classifier_class(regularization=10.0).fit(features, labels)
        assert np.linalg.norm(strong.weights) < np.linalg.norm(weak.weights)

    def test_validation(self, classifier_class):
        with pytest.raises(ValueError):
            classifier_class(regularization=-1.0)
        with pytest.raises(ValueError):
            classifier_class(learning_rate=0.0)
        with pytest.raises(ValueError):
            classifier_class(num_iterations=0)


class TestObjectiveMachinery:
    def test_gradient_descent_reduces_objective(self):
        features, labels = separable_data()
        signed = np.where(labels == 1, 1.0, -1.0)
        classifier = LogisticRegressionClassifier(regularization=1e-3, fit_intercept=False)
        initial = classifier.objective(np.zeros(features.shape[1]), features, signed)
        weights = classifier.train_weights(features, signed)
        final = classifier.objective(weights, features, signed)
        assert final < initial

    def test_extra_ridge_term_shrinks_solution(self):
        features, labels = separable_data()
        signed = np.where(labels == 1, 1.0, -1.0)
        classifier = LogisticRegressionClassifier(regularization=1e-4, fit_intercept=False)
        plain = classifier.train_weights(features, signed)
        ridged = classifier.train_weights(features, signed, extra_regularization=5.0)
        assert np.linalg.norm(ridged) < np.linalg.norm(plain)

    def test_set_weights_installs_external_solution(self):
        features, labels = separable_data(100)
        classifier = LinearSVMClassifier(fit_intercept=False)
        classifier.set_weights(np.array([1.0, -0.5, 0.25]), classes=np.array([0, 1]))
        assert classifier.score(features, labels) > 0.9

    def test_svm_huber_h_validation(self):
        with pytest.raises(ValueError):
            LinearSVMClassifier(huber_h=0.0)
