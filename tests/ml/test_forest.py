"""Tests for the random forest."""

import numpy as np
import pytest

from repro.ml.forest import RandomForestClassifier
from repro.ml.tree import DecisionTreeClassifier


def noisy_rule_data(num_records=800, seed=0):
    rng = np.random.default_rng(seed)
    features = rng.integers(0, 5, size=(num_records, 4))
    labels = ((features[:, 0] + features[:, 2]) >= 5).astype(np.int64)
    flip = rng.random(num_records) < 0.1
    return features, np.where(flip, 1 - labels, labels)


class TestRandomForest:
    def test_validation(self):
        with pytest.raises(ValueError):
            RandomForestClassifier(num_trees=0)

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            RandomForestClassifier().predict(np.zeros((1, 2)))

    def test_learns_a_noisy_rule(self):
        features, labels = noisy_rule_data()
        forest = RandomForestClassifier(num_trees=10, max_depth=6, random_state=0)
        forest.fit(features, labels)
        assert forest.score(features, labels) > 0.85

    def test_votes_shape_and_total(self):
        features, labels = noisy_rule_data(200)
        forest = RandomForestClassifier(num_trees=7, max_depth=4).fit(features, labels)
        votes = forest.predict_votes(features[:10])
        assert votes.shape == (10, 2)
        assert np.all(votes.sum(axis=1) == 7)

    def test_predict_proba_rows_sum_to_one(self):
        features, labels = noisy_rule_data(200)
        forest = RandomForestClassifier(num_trees=5, max_depth=4).fit(features, labels)
        probabilities = forest.predict_proba(features[:20])
        assert np.allclose(probabilities.sum(axis=1), 1.0)

    def test_reproducible_for_fixed_seed(self):
        features, labels = noisy_rule_data(300)
        first = RandomForestClassifier(num_trees=5, random_state=3).fit(features, labels)
        second = RandomForestClassifier(num_trees=5, random_state=3).fit(features, labels)
        assert np.array_equal(first.predict(features), second.predict(features))

    def test_different_seeds_give_different_forests(self):
        features, labels = noisy_rule_data(300)
        first = RandomForestClassifier(num_trees=3, random_state=1).fit(features, labels)
        second = RandomForestClassifier(num_trees=3, random_state=2).fit(features, labels)
        assert not np.array_equal(
            first.predict_votes(features), second.predict_votes(features)
        )

    def test_forest_at_least_as_good_as_single_default_tree_on_noisy_data(self):
        features, labels = noisy_rule_data(1000, seed=5)
        train, test = (features[:700], labels[:700]), (features[700:], labels[700:])
        tree = DecisionTreeClassifier(max_depth=6, random_state=0).fit(*train)
        forest = RandomForestClassifier(num_trees=15, max_depth=6, random_state=0).fit(*train)
        assert forest.score(*test) >= tree.score(*test) - 0.03
