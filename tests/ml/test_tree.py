"""Tests for the CART decision tree."""

import numpy as np
import pytest

from repro.ml.tree import DecisionTreeClassifier


def xor_data(num_records=600, noise=0.0, seed=0):
    """A dataset whose label is the XOR of two binary features (needs depth 2)."""
    rng = np.random.default_rng(seed)
    features = rng.integers(0, 2, size=(num_records, 3))
    labels = features[:, 0] ^ features[:, 1]
    flip = rng.random(num_records) < noise
    labels = np.where(flip, 1 - labels, labels)
    return features, labels


class TestFitting:
    def test_learns_a_simple_threshold_rule(self):
        features = np.arange(100).reshape(-1, 1)
        labels = (features[:, 0] >= 50).astype(np.int64)
        tree = DecisionTreeClassifier(max_depth=2).fit(features, labels)
        assert tree.score(features, labels) == 1.0

    def test_learns_xor_with_enough_depth(self):
        features, labels = xor_data()
        tree = DecisionTreeClassifier(max_depth=3).fit(features, labels)
        assert tree.score(features, labels) > 0.95

    def test_depth_one_cannot_learn_xor(self):
        features, labels = xor_data()
        stump = DecisionTreeClassifier(max_depth=1).fit(features, labels)
        assert stump.score(features, labels) < 0.7

    def test_pure_node_becomes_leaf(self):
        features = np.array([[0], [1], [2]])
        labels = np.array([1, 1, 1])
        tree = DecisionTreeClassifier().fit(features, labels)
        assert tree.num_nodes() == 1
        assert tree.predict(np.array([[5]])).tolist() == [1]

    def test_max_depth_respected(self):
        features, labels = xor_data(noise=0.2)
        tree = DecisionTreeClassifier(max_depth=2).fit(features, labels)
        assert tree.depth() <= 2

    def test_min_samples_leaf(self):
        features, labels = xor_data(200)
        tree = DecisionTreeClassifier(min_samples_leaf=50).fit(features, labels)
        assert tree.depth() <= 3  # large leaves force a shallow tree

    def test_sample_weights_steer_the_fit(self):
        # Two contradictory blocks: weights decide which one the stump follows.
        features = np.array([[0], [0], [1], [1]])
        labels = np.array([0, 1, 0, 1])
        weights_favour_one = np.array([0.1, 10.0, 0.1, 10.0])
        tree = DecisionTreeClassifier(max_depth=1).fit(
            features, labels, sample_weight=weights_favour_one
        )
        assert tree.predict(np.array([[0], [1]])).tolist() == [1, 1]

    def test_multiclass_labels(self):
        features = np.array([[0], [1], [2], [0], [1], [2]] * 20)
        labels = features[:, 0]
        tree = DecisionTreeClassifier(max_depth=3).fit(features, labels)
        assert tree.score(features, labels) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier(max_depth=0)
        with pytest.raises(ValueError):
            DecisionTreeClassifier(min_samples_split=1)
        with pytest.raises(ValueError):
            DecisionTreeClassifier(min_samples_leaf=0)
        tree = DecisionTreeClassifier()
        with pytest.raises(ValueError):
            tree.fit(np.zeros((0, 2)), np.zeros(0))
        with pytest.raises(ValueError):
            tree.fit(np.zeros((3, 2)), np.zeros(2))
        with pytest.raises(ValueError):
            tree.fit(np.zeros((3, 2)), np.array([-1, 0, 1]))
        with pytest.raises(ValueError):
            tree.fit(np.zeros((3, 2)), np.zeros(3), sample_weight=np.array([1.0, -1.0, 1.0]))


class TestPrediction:
    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            DecisionTreeClassifier().predict(np.zeros((1, 2)))

    def test_predict_checks_feature_count(self):
        features, labels = xor_data(100)
        tree = DecisionTreeClassifier(max_depth=2).fit(features, labels)
        with pytest.raises(ValueError):
            tree.predict(np.zeros((5, 7)))

    def test_predictions_are_known_labels(self):
        features, labels = xor_data(300)
        tree = DecisionTreeClassifier(max_depth=4).fit(features, labels)
        predictions = tree.predict(features)
        assert set(np.unique(predictions)) <= set(np.unique(labels))

    def test_feature_subsampling_is_deterministic_per_seed(self):
        features, labels = xor_data(300)
        first = DecisionTreeClassifier(max_depth=4, max_features=1, random_state=5).fit(
            features, labels
        )
        second = DecisionTreeClassifier(max_depth=4, max_features=1, random_state=5).fit(
            features, labels
        )
        assert np.array_equal(first.predict(features), second.predict(features))

    def test_income_prediction_on_acs_beats_chance(self, acs_splits):
        train = acs_splits.structure.concat(acs_splits.parameters)
        test = acs_splits.test
        income = train.schema.index_of("WAGP")
        feature_columns = [c for c in range(11) if c != income]
        tree = DecisionTreeClassifier(max_depth=8, min_samples_leaf=10, random_state=0).fit(
            train.data[:, feature_columns], train.data[:, income]
        )
        predictions = tree.predict(test.data[:, feature_columns])
        accuracy = np.mean(predictions == test.data[:, income])
        majority = max(np.mean(test.data[:, income] == 0), np.mean(test.data[:, income] == 1))
        assert accuracy >= majority - 0.05
        assert accuracy > 0.5
