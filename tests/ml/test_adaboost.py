"""Tests for AdaBoostM1."""

import numpy as np
import pytest

from repro.ml.adaboost import AdaBoostM1Classifier
from repro.ml.tree import DecisionTreeClassifier


def interaction_data(num_records=800, seed=0):
    rng = np.random.default_rng(seed)
    features = rng.integers(0, 2, size=(num_records, 4))
    labels = (features[:, 0] ^ features[:, 1]) | features[:, 3]
    flip = rng.random(num_records) < 0.05
    return features, np.where(flip, 1 - labels, labels).astype(np.int64)


class TestAdaBoost:
    def test_validation(self):
        with pytest.raises(ValueError):
            AdaBoostM1Classifier(num_rounds=0)
        with pytest.raises(ValueError):
            AdaBoostM1Classifier(base_max_depth=0)

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            AdaBoostM1Classifier().predict(np.zeros((1, 2)))

    def test_boosting_beats_a_single_stump(self):
        features, labels = interaction_data()
        stump = DecisionTreeClassifier(max_depth=1).fit(features, labels)
        booster = AdaBoostM1Classifier(num_rounds=20, base_max_depth=1, random_state=0)
        booster.fit(features, labels)
        assert booster.score(features, labels) > stump.score(features, labels)

    def test_stops_on_perfect_weak_learner(self):
        features = np.arange(100).reshape(-1, 1)
        labels = (features[:, 0] >= 50).astype(np.int64)
        booster = AdaBoostM1Classifier(num_rounds=10, base_max_depth=2).fit(features, labels)
        assert booster.num_learners == 1
        assert booster.score(features, labels) == 1.0

    def test_keeps_at_least_one_learner_on_impossible_data(self):
        rng = np.random.default_rng(0)
        features = rng.integers(0, 2, size=(200, 1))
        labels = rng.integers(0, 2, size=200)
        booster = AdaBoostM1Classifier(num_rounds=5, base_max_depth=1).fit(features, labels)
        assert booster.num_learners >= 1
        predictions = booster.predict(features)
        assert set(np.unique(predictions)) <= {0, 1}

    def test_decision_scores_shape(self):
        features, labels = interaction_data(200)
        booster = AdaBoostM1Classifier(num_rounds=5).fit(features, labels)
        scores = booster.decision_scores(features[:15])
        assert scores.shape == (15, 2)
        assert np.all(scores >= 0)

    def test_reproducible_for_fixed_seed(self):
        features, labels = interaction_data(300)
        first = AdaBoostM1Classifier(num_rounds=8, random_state=7).fit(features, labels)
        second = AdaBoostM1Classifier(num_rounds=8, random_state=7).fit(features, labels)
        assert np.array_equal(first.predict(features), second.predict(features))

    def test_learner_count_bounded_by_rounds(self):
        features, labels = interaction_data(400, seed=2)
        booster = AdaBoostM1Classifier(num_rounds=6, base_max_depth=1).fit(features, labels)
        assert booster.num_learners <= 6
