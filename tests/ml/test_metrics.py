"""Tests for classification metrics."""

import numpy as np
import pytest

from repro.ml.metrics import accuracy, confusion_matrix, error_rate


class TestAccuracy:
    def test_perfect_and_zero(self):
        labels = np.array([0, 1, 1, 0])
        assert accuracy(labels, labels) == 1.0
        assert accuracy(1 - labels, labels) == 0.0

    def test_partial(self):
        assert accuracy(np.array([0, 1, 1]), np.array([0, 0, 1])) == pytest.approx(2 / 3)

    def test_empty(self):
        assert accuracy(np.array([]), np.array([])) == 0.0

    def test_error_rate_complement(self):
        predictions = np.array([0, 1, 0, 1])
        labels = np.array([0, 0, 0, 1])
        assert accuracy(predictions, labels) + error_rate(predictions, labels) == pytest.approx(1.0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            accuracy(np.array([0, 1]), np.array([0]))

    def test_2d_input_rejected(self):
        with pytest.raises(ValueError):
            accuracy(np.zeros((2, 2)), np.zeros((2, 2)))


class TestConfusionMatrix:
    def test_counts_by_true_and_predicted(self):
        predictions = np.array([0, 1, 1, 0, 1])
        labels = np.array([0, 0, 1, 1, 1])
        matrix = confusion_matrix(predictions, labels)
        assert matrix.tolist() == [[1, 1], [1, 2]]
        assert matrix.sum() == 5

    def test_explicit_num_classes(self):
        matrix = confusion_matrix(np.array([0]), np.array([0]), num_classes=3)
        assert matrix.shape == (3, 3)

    def test_diagonal_sum_equals_correct_predictions(self):
        rng = np.random.default_rng(0)
        predictions = rng.integers(0, 3, size=100)
        labels = rng.integers(0, 3, size=100)
        matrix = confusion_matrix(predictions, labels, num_classes=3)
        assert np.trace(matrix) == np.sum(predictions == labels)
