"""Tests for the ACS-like population model and cleaning pipeline."""

import numpy as np
import pytest

from repro.datasets.acs import (
    ACS_SCHEMA,
    MISSING,
    AcsPopulationModel,
    clean_acs,
    load_acs,
    sample_raw_acs,
)
from repro.stats.entropy import mutual_information


class TestSchema:
    def test_has_eleven_attributes(self):
        assert len(ACS_SCHEMA) == 11

    def test_cardinalities_match_table1(self):
        expected = {
            "AGEP": 80,
            "COW": 8,
            "SCHL": 24,
            "MAR": 5,
            "OCCP": 25,
            "RELP": 18,
            "RAC1P": 5,
            "SEX": 2,
            "WKHP": 100,
            "WAOB": 8,
            "WAGP": 2,
        }
        for name, cardinality in expected.items():
            assert ACS_SCHEMA[name].cardinality == cardinality

    def test_possible_records_matches_table2_order_of_magnitude(self):
        # The paper reports ~5.4e11 possible records for this schema.
        assert 1e11 < ACS_SCHEMA.possible_records() < 1e12

    def test_age_and_hours_are_bucketized_for_structure_learning(self):
        assert ACS_SCHEMA["AGEP"].bucketized_cardinality == 8
        assert ACS_SCHEMA["WKHP"].bucketized_cardinality == 7

    def test_education_buckets_aggregate_low_levels(self):
        education = ACS_SCHEMA["SCHL"]
        buckets = education.bucketize(np.arange(education.cardinality))
        # Everything below a high-school diploma lands in a single bucket.
        assert len(set(buckets[:15].tolist())) == 1
        assert education.bucketized_cardinality < education.cardinality


class TestSampling:
    def test_sample_raw_shape(self):
        raw = sample_raw_acs(500, seed=0)
        assert raw.shape == (500, 11)

    def test_sample_raw_is_deterministic_per_seed(self):
        assert np.array_equal(sample_raw_acs(200, seed=3), sample_raw_acs(200, seed=3))
        assert not np.array_equal(sample_raw_acs(200, seed=3), sample_raw_acs(200, seed=4))

    def test_raw_sample_contains_missing_values(self):
        raw = sample_raw_acs(2000, seed=1)
        assert (raw == MISSING).any()

    def test_missing_rate_zero_gives_clean_data(self):
        model = AcsPopulationModel(missing_rate=0.0, underage_rate=0.0)
        raw = sample_raw_acs(500, seed=2, model=model)
        assert not (raw == MISSING).any()

    def test_sample_encoded_values_in_domain(self):
        model = AcsPopulationModel()
        encoded = model.sample_encoded(1000, np.random.default_rng(0))
        for col, attribute in enumerate(ACS_SCHEMA):
            assert encoded[:, col].min() >= 0
            assert encoded[:, col].max() < attribute.cardinality

    def test_zero_records(self):
        model = AcsPopulationModel()
        assert model.sample_encoded(0, np.random.default_rng(0)).shape[0] == 0

    def test_negative_records_rejected(self):
        model = AcsPopulationModel()
        with pytest.raises(ValueError):
            model.sample_encoded(-1, np.random.default_rng(0))


class TestCleaning:
    def test_clean_drops_rows_with_missing(self):
        raw = sample_raw_acs(2000, seed=5)
        clean = clean_acs(raw)
        assert len(clean) < 2000
        assert not (clean.data == MISSING).any()

    def test_clean_rejects_wrong_shape(self):
        with pytest.raises(ValueError):
            clean_acs(np.zeros((10, 4), dtype=np.int64))

    def test_load_acs_returns_dataset_with_acs_schema(self):
        dataset = load_acs(1500, seed=9)
        assert dataset.schema == ACS_SCHEMA
        assert 0 < len(dataset) <= 1500


class TestPopulationStructure:
    """The simulated population must carry the correlations the paper relies on."""

    @pytest.fixture(scope="class")
    def population(self):
        return load_acs(20_000, seed=17)

    def test_income_depends_on_education(self, population):
        education = population.schema["SCHL"].bucketize(population.column("SCHL"))
        income = population.column("WAGP")
        assert mutual_information(income, education) > 0.02

    def test_income_depends_on_hours_worked(self, population):
        hours = population.schema["WKHP"].bucketize(population.column("WKHP"))
        income = population.column("WAGP")
        assert mutual_information(income, hours) > 0.01

    def test_marital_status_depends_on_age(self, population):
        age = population.schema["AGEP"].bucketize(population.column("AGEP"))
        marital = population.column("MAR")
        assert mutual_information(marital, age) > 0.05

    def test_occupation_depends_on_education(self, population):
        education = population.schema["SCHL"].bucketize(population.column("SCHL"))
        occupation = population.column("OCCP")
        assert mutual_information(occupation, education) > 0.05

    def test_high_income_rate_is_plausible(self, population):
        high_income_rate = population.column("WAGP").mean()
        assert 0.05 < high_income_rate < 0.6

    def test_most_records_are_unique(self, population):
        # Table 2: a large fraction of records is unique (68.4% in the paper,
        # higher here because the sample is much smaller than the population).
        assert population.unique_fraction() > 0.5
