"""Tests for the encoded Dataset container."""

import numpy as np
import pytest

from repro.datasets.dataset import Dataset
from repro.datasets.schema import Attribute, AttributeType, Schema


@pytest.fixture()
def schema():
    return Schema(
        [
            Attribute("num", AttributeType.NUMERICAL, (10, 20, 30)),
            Attribute("cat", AttributeType.CATEGORICAL, ("a", "b")),
        ]
    )


@pytest.fixture()
def dataset(schema):
    return Dataset(schema, np.array([[0, 1], [2, 0], [1, 1]]))


class TestConstruction:
    def test_basic_shape_properties(self, dataset):
        assert len(dataset) == 3
        assert dataset.num_records == 3
        assert dataset.num_attributes == 2

    def test_rejects_wrong_column_count(self, schema):
        with pytest.raises(ValueError):
            Dataset(schema, np.zeros((2, 3), dtype=np.int64))

    def test_rejects_out_of_range_codes(self, schema):
        with pytest.raises(ValueError):
            Dataset(schema, np.array([[5, 0]]))

    def test_rejects_non_2d_data(self, schema):
        with pytest.raises(ValueError):
            Dataset(schema, np.array([0, 1]))

    def test_from_records_encodes_raw_values(self, schema):
        dataset = Dataset.from_records(schema, [[20, "b"], [10, "a"]])
        assert dataset.data.tolist() == [[1, 1], [0, 0]]

    def test_from_records_empty(self, schema):
        dataset = Dataset.from_records(schema, [])
        assert len(dataset) == 0

    def test_equality(self, schema, dataset):
        clone = Dataset(schema, dataset.data.copy())
        assert clone == dataset
        different = Dataset(schema, np.array([[0, 0]]))
        assert different != dataset


class TestAccess:
    def test_column_by_name_and_index(self, dataset):
        assert dataset.column("cat").tolist() == [1, 0, 1]
        assert dataset.column(0).tolist() == [0, 2, 1]

    def test_record(self, dataset):
        assert dataset.record(1).tolist() == [2, 0]

    def test_decoded_records(self, dataset):
        assert dataset.decoded_records() == [[10, "b"], [30, "a"], [20, "b"]]

    def test_bucketized_matches_schema_buckets(self, toy_dataset):
        bucketized = toy_dataset.bucketized()
        assert bucketized.shape == toy_dataset.data.shape
        # The age column (bucket size 5) is compressed into 4 buckets.
        assert bucketized[:, 0].max() <= 3
        # Unbucketized columns are unchanged.
        assert np.array_equal(bucketized[:, 1], toy_dataset.data[:, 1])


class TestTransformation:
    def test_take_preserves_order(self, dataset):
        subset = dataset.take(np.array([2, 0]))
        assert subset.data.tolist() == [[1, 1], [0, 1]]

    def test_head(self, dataset):
        assert len(dataset.head(2)) == 2

    def test_sample_without_replacement(self, dataset, rng):
        sample = dataset.sample(2, rng)
        assert len(sample) == 2

    def test_sample_too_many_raises(self, dataset, rng):
        with pytest.raises(ValueError):
            dataset.sample(10, rng)

    def test_sample_with_replacement_allows_more(self, dataset, rng):
        sample = dataset.sample(10, rng, replace=True)
        assert len(sample) == 10

    def test_concat(self, dataset):
        combined = dataset.concat(dataset)
        assert len(combined) == 6

    def test_concat_requires_same_schema(self, dataset, toy_dataset):
        with pytest.raises(ValueError):
            dataset.concat(toy_dataset)

    def test_unique_fraction(self, schema):
        data = Dataset(schema, np.array([[0, 0], [0, 0], [1, 1]]))
        assert data.unique_fraction() == pytest.approx(1 / 3)

    def test_unique_fraction_empty(self, schema):
        data = Dataset(schema, np.empty((0, 2), dtype=np.int64))
        assert data.unique_fraction() == 0.0


class TestCsvRoundTrip:
    def test_to_csv_and_back(self, dataset, tmp_path):
        path = tmp_path / "data.csv"
        dataset.to_csv(path)
        loaded = Dataset.from_csv(dataset.schema, path)
        assert loaded == dataset

    def test_from_csv_rejects_wrong_header(self, dataset, tmp_path, schema):
        path = tmp_path / "data.csv"
        path.write_text("wrong,header\n1,a\n")
        with pytest.raises(ValueError, match="header"):
            Dataset.from_csv(schema, path)

    def test_from_csv_rejects_empty_file(self, tmp_path, schema):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            Dataset.from_csv(schema, path)
