"""Tests for JSON schema metadata."""

import pytest

from repro.datasets.acs import ACS_SCHEMA
from repro.datasets.metadata import (
    read_metadata,
    schema_from_metadata,
    schema_to_metadata,
    write_metadata,
)


class TestRoundTrip:
    def test_toy_schema_round_trip(self, toy_schema):
        rebuilt = schema_from_metadata(schema_to_metadata(toy_schema))
        assert rebuilt == toy_schema

    def test_acs_schema_round_trip(self):
        rebuilt = schema_from_metadata(schema_to_metadata(ACS_SCHEMA))
        assert rebuilt == ACS_SCHEMA

    def test_file_round_trip(self, toy_schema, tmp_path):
        path = tmp_path / "metadata.json"
        write_metadata(toy_schema, path)
        assert read_metadata(path) == toy_schema

    def test_bucketization_preserved(self):
        metadata = schema_to_metadata(ACS_SCHEMA)
        rebuilt = schema_from_metadata(metadata)
        assert rebuilt["AGEP"].bucket_size == 10
        assert rebuilt["SCHL"].bucket_map == ACS_SCHEMA["SCHL"].bucket_map


class TestValidation:
    def test_missing_attributes_key(self):
        with pytest.raises(ValueError):
            schema_from_metadata({})

    def test_empty_attribute_list(self):
        with pytest.raises(ValueError):
            schema_from_metadata({"attributes": []})

    def test_missing_field(self):
        with pytest.raises(ValueError, match="missing"):
            schema_from_metadata({"attributes": [{"name": "x", "values": [1]}]})

    def test_unknown_type(self):
        with pytest.raises(ValueError, match="unknown type"):
            schema_from_metadata(
                {"attributes": [{"name": "x", "type": "weird", "values": [1]}]}
            )
