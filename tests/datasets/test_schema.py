"""Tests for attribute / schema definitions and bucketization."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.datasets.schema import Attribute, AttributeType, Schema


def make_attribute(cardinality=10, bucket_size=None, bucket_map=None, name="attr"):
    return Attribute(
        name,
        AttributeType.CATEGORICAL,
        tuple(f"v{i}" for i in range(cardinality)),
        bucket_size=bucket_size,
        bucket_map=bucket_map,
    )


class TestAttribute:
    def test_cardinality_matches_values(self):
        attribute = make_attribute(7)
        assert attribute.cardinality == 7

    def test_requires_name(self):
        with pytest.raises(ValueError):
            Attribute("", AttributeType.CATEGORICAL, ("a",))

    def test_requires_values(self):
        with pytest.raises(ValueError):
            Attribute("x", AttributeType.CATEGORICAL, ())

    def test_rejects_duplicate_values(self):
        with pytest.raises(ValueError):
            Attribute("x", AttributeType.CATEGORICAL, ("a", "a"))

    def test_rejects_nonpositive_bucket_size(self):
        with pytest.raises(ValueError):
            make_attribute(bucket_size=0)

    def test_bucket_map_must_cover_all_values(self):
        with pytest.raises(ValueError):
            make_attribute(cardinality=3, bucket_map=(0, 1))

    def test_bucket_map_must_be_contiguous(self):
        with pytest.raises(ValueError):
            make_attribute(cardinality=3, bucket_map=(0, 2, 2))

    def test_encode_decode_round_trip(self):
        attribute = make_attribute(5)
        raw = ["v3", "v0", "v4", "v0"]
        codes = attribute.encode(raw)
        assert codes.tolist() == [3, 0, 4, 0]
        assert attribute.decode(codes) == raw

    def test_encode_rejects_unknown_value(self):
        attribute = make_attribute(3)
        with pytest.raises(ValueError, match="not in the domain"):
            attribute.encode(["v9"])

    def test_decode_rejects_out_of_range_code(self):
        attribute = make_attribute(3)
        with pytest.raises(ValueError, match="out of range"):
            attribute.decode(np.array([5]))

    def test_bucketize_without_buckets_is_identity(self):
        attribute = make_attribute(6)
        codes = np.array([0, 3, 5])
        assert attribute.bucketize(codes).tolist() == [0, 3, 5]

    def test_bucketize_with_bucket_size(self):
        attribute = make_attribute(10, bucket_size=3)
        codes = np.arange(10)
        assert attribute.bucketize(codes).tolist() == [0, 0, 0, 1, 1, 1, 2, 2, 2, 3]
        assert attribute.bucketized_cardinality == 4

    def test_bucketize_with_explicit_map(self):
        attribute = make_attribute(4, bucket_map=(0, 0, 1, 1))
        assert attribute.bucketize(np.array([0, 1, 2, 3])).tolist() == [0, 0, 1, 1]
        assert attribute.bucketized_cardinality == 2

    def test_bucketize_rejects_out_of_range(self):
        attribute = make_attribute(4, bucket_size=2)
        with pytest.raises(ValueError):
            attribute.bucketize(np.array([4]))

    @given(st.integers(min_value=1, max_value=60), st.integers(min_value=1, max_value=15))
    def test_bucketized_cardinality_consistent_with_bucketize(self, cardinality, bucket_size):
        attribute = make_attribute(cardinality, bucket_size=bucket_size)
        buckets = attribute.bucketize(np.arange(cardinality))
        assert buckets.max() + 1 == attribute.bucketized_cardinality
        assert buckets.min() == 0
        # Buckets are monotone non-decreasing over the value order.
        assert np.all(np.diff(buckets) >= 0)


class TestSchema:
    def test_len_and_iteration(self, toy_schema):
        assert len(toy_schema) == 4
        assert [a.name for a in toy_schema] == ["age", "color", "size", "label"]

    def test_lookup_by_name_and_index(self, toy_schema):
        assert toy_schema["color"].name == "color"
        assert toy_schema[2].name == "size"
        assert toy_schema.index_of("label") == 3

    def test_unknown_attribute_raises_key_error(self, toy_schema):
        with pytest.raises(KeyError):
            toy_schema.index_of("nope")

    def test_requires_unique_names(self):
        attribute = make_attribute(2, name="dup")
        with pytest.raises(ValueError):
            Schema([attribute, attribute])

    def test_requires_at_least_one_attribute(self):
        with pytest.raises(ValueError):
            Schema([])

    def test_cardinalities(self, toy_schema):
        assert toy_schema.cardinalities == [20, 3, 2, 2]

    def test_bucketized_cardinalities(self, toy_schema):
        assert toy_schema.bucketized_cardinalities == [4, 3, 2, 2]

    def test_possible_records_is_product_of_cardinalities(self, toy_schema):
        assert toy_schema.possible_records() == 20 * 3 * 2 * 2

    def test_equality_is_by_value(self, toy_schema):
        clone = Schema(list(toy_schema.attributes))
        assert clone == toy_schema

    def test_repr_mentions_attribute_names(self, toy_schema):
        assert "age" in repr(toy_schema)
