"""Tests for DS / DT / DP / test splitting."""

import numpy as np
import pytest

from repro.datasets.splits import DataSplits, split_dataset, train_test_split


class TestSplitDataset:
    def test_splits_are_disjoint_and_cover_everything(self, toy_dataset, rng):
        splits = split_dataset(toy_dataset, rng=rng)
        assert splits.total_records == len(toy_dataset)
        combined = np.vstack(
            [splits.seeds.data, splits.structure.data, splits.parameters.data, splits.test.data]
        )
        # Sorting rows lexicographically must reproduce the original multiset.
        original = toy_dataset.data[np.lexsort(toy_dataset.data.T)]
        recombined = combined[np.lexsort(combined.T)]
        assert np.array_equal(original, recombined)

    def test_default_fractions_match_paper_proportions(self, toy_dataset, rng):
        splits = split_dataset(toy_dataset, rng=rng)
        n = len(toy_dataset)
        assert len(splits.seeds) == pytest.approx(0.55 * n, abs=2)
        assert len(splits.structure) == pytest.approx(0.175 * n, abs=2)
        assert len(splits.parameters) == pytest.approx(0.175 * n, abs=2)
        assert len(splits.test) == pytest.approx(0.10 * n, abs=3)

    def test_custom_fractions(self, toy_dataset, rng):
        splits = split_dataset(
            toy_dataset, seed_fraction=0.5, structure_fraction=0.3, parameter_fraction=0.2, rng=rng
        )
        assert len(splits.test) == 0

    def test_rejects_fractions_above_one(self, toy_dataset, rng):
        with pytest.raises(ValueError):
            split_dataset(toy_dataset, seed_fraction=0.8, structure_fraction=0.3, rng=rng)

    def test_rejects_negative_fractions(self, toy_dataset, rng):
        with pytest.raises(ValueError):
            split_dataset(toy_dataset, seed_fraction=-0.1, rng=rng)

    def test_reproducible_with_same_rng_seed(self, toy_dataset):
        first = split_dataset(toy_dataset, rng=np.random.default_rng(5))
        second = split_dataset(toy_dataset, rng=np.random.default_rng(5))
        assert np.array_equal(first.seeds.data, second.seeds.data)

    def test_data_splits_require_consistent_schema(self, toy_dataset, acs_dataset, rng):
        splits = split_dataset(toy_dataset, rng=rng)
        with pytest.raises(ValueError):
            DataSplits(
                seeds=splits.seeds,
                structure=splits.structure,
                parameters=splits.parameters,
                test=acs_dataset,
            )


class TestTrainTestSplit:
    def test_sizes(self, toy_dataset, rng):
        train, test = train_test_split(toy_dataset, test_fraction=0.25, rng=rng)
        assert len(test) == pytest.approx(0.25 * len(toy_dataset), abs=1)
        assert len(train) + len(test) == len(toy_dataset)

    def test_rejects_degenerate_fraction(self, toy_dataset, rng):
        with pytest.raises(ValueError):
            train_test_split(toy_dataset, test_fraction=0.0, rng=rng)
        with pytest.raises(ValueError):
            train_test_split(toy_dataset, test_fraction=1.0, rng=rng)

    def test_disjoint(self, toy_dataset, rng):
        train, test = train_test_split(toy_dataset, test_fraction=0.5, rng=rng)
        combined = np.vstack([train.data, test.data])
        original = toy_dataset.data[np.lexsort(toy_dataset.data.T)]
        recombined = combined[np.lexsort(combined.T)]
        assert np.array_equal(original, recombined)
