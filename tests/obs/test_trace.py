"""The tracer: span lifecycle, LRU retention, torn-tail-tolerant trace log."""

import json

import pytest

from repro.obs import (
    ManualClock,
    PhaseProfile,
    Telemetry,
    TraceCorruptionError,
    TraceLog,
    Tracer,
    phase,
    profiled,
    read_trace_log,
)
from repro.obs.profile import current_profile

pytestmark = pytest.mark.analysis


class TestSpans:
    def test_context_manager_times_with_injected_clock(self):
        clock = ManualClock()
        tracer = Tracer(clock=clock)
        with tracer.span("r1", "work") as span:
            clock.advance(2.5)
        trace = tracer.trace("r1")
        assert len(trace["spans"]) == 1
        record = trace["spans"][0]
        assert record["name"] == "work"
        assert record["end"] - record["start"] == pytest.approx(2.5)
        assert span.span_id == record["span"]

    def test_span_ids_are_deterministic_counters(self):
        tracer = Tracer(clock=ManualClock())
        first = tracer.start_span("r1", "a")
        second = tracer.start_span("r1", "b")
        try:
            assert (first.span_id, second.span_id) == ("s00000001", "s00000002")
        finally:
            first.end()
            second.end()

    def test_end_is_idempotent(self):
        clock = ManualClock()
        tracer = Tracer(clock=clock)
        span = tracer.start_span("r1", "a")
        span.end()
        clock.advance(10)
        span.end()
        assert len(tracer.trace("r1")["spans"]) == 1

    def test_parentless_spans_reparent_to_root(self):
        tracer = Tracer(clock=ManualClock())
        root = tracer.start_span("r1", "request")
        tracer.record_span("r1", "late", start=1.0, end=2.0)
        root.end()
        trace = tracer.trace("r1")
        by_name = {record["name"]: record for record in trace["spans"]}
        assert by_name["request"]["parent"] is None
        assert by_name["late"]["parent"] == by_name["request"]["span"]

    def test_trace_lru_eviction(self):
        tracer = Tracer(clock=ManualClock(), max_traces=2)
        for rid in ("r1", "r2", "r3"):
            tracer.record_span(rid, "x", start=0.0, end=1.0)
        assert tracer.trace("r1") is None
        assert tracer.trace("r2") is not None
        assert tracer.trace("r3") is not None

    def test_span_cap_counts_dropped(self):
        tracer = Tracer(clock=ManualClock(), max_spans_per_trace=2)
        for _ in range(5):
            tracer.record_span("r1", "x", start=0.0, end=1.0)
        trace = tracer.trace("r1")
        assert len(trace["spans"]) == 2
        assert trace["dropped_spans"] == 3

    def test_unknown_trace_is_none(self):
        assert Tracer(clock=ManualClock()).trace("nope") is None


class TestTraceLog:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        log = TraceLog(path)
        log.append({"span": "s1", "name": "a"})
        log.append({"span": "s2", "name": "b"})
        log.close()
        assert [r["span"] for r in read_trace_log(path)] == ["s1", "s2"]

    def test_torn_final_line_dropped(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        log = TraceLog(path)
        log.append({"span": "s1"})
        log.append({"span": "s2"})
        log.close()
        raw = path.read_bytes()
        path.write_bytes(raw[:-9])  # tear the final record mid-JSON
        assert [r["span"] for r in read_trace_log(path)] == ["s1"]

    def test_mid_file_corruption_raises(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"span": "s1"\n{"span": "s2"}\n')
        with pytest.raises(TraceCorruptionError):
            read_trace_log(path)

    def test_missing_file_is_empty(self, tmp_path):
        assert read_trace_log(tmp_path / "absent.jsonl") == []

    def test_tracer_streams_finished_spans(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(clock=ManualClock(), log=TraceLog(path))
        with tracer.span("r1", "work"):
            pass
        tracer.close()
        records = read_trace_log(path)
        assert [r["name"] for r in records] == ["work"]
        # every line is standalone JSON with sorted keys
        line = path.read_text().splitlines()[0]
        assert line == json.dumps(json.loads(line), sort_keys=True)


class TestPhaseProfile:
    def test_phase_is_noop_without_active_profile(self):
        assert current_profile() is None
        with phase("sample"):
            pass  # must not raise, must not allocate a profile
        assert current_profile() is None

    def test_profiled_collects_nested_phases(self):
        profile = PhaseProfile()
        with profiled(profile):
            with phase("sample"):
                pass
            with phase("sample"):
                pass
            with phase("merge"):
                pass
        snapshot = profile.snapshot()
        assert snapshot["sample"]["calls"] == 2
        assert snapshot["merge"]["calls"] == 1

    def test_profiled_restores_previous(self):
        outer, inner = PhaseProfile(), PhaseProfile()
        with profiled(outer):
            with profiled(inner):
                assert current_profile() is inner
            assert current_profile() is outer
        assert current_profile() is None


class TestTelemetryHub:
    def test_catalog_renders_clean(self):
        from repro.obs.metrics import validate_exposition

        hub = Telemetry()
        hub.requests_total.inc(1, status="completed")
        hub.queue_wait_seconds.observe(0.01)
        hub.add_phase("sample", 0.2)
        assert validate_exposition(hub.metrics.render()) == []
        assert hub.phase_summary()["sample"]["calls"] == 1
        hub.close()

    def test_engine_event_maps_to_counters(self):
        hub = Telemetry()
        hub.engine_event("worker_restart", {"slot": 0})
        hub.engine_event("chunk_retry", {"chunk": 3})
        hub.engine_event("pool_rebuild", {})
        assert hub.worker_restarts_total.value() == 1
        assert hub.chunk_retries_total.value() == 1
        assert hub.pool_rebuilds_total.value() == 1
        hub.close()
