"""The metrics registry: instrument semantics and Prometheus exposition."""

import threading

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    validate_exposition,
)

pytestmark = pytest.mark.analysis


class TestCounter:
    def test_inc_and_value(self):
        counter = Counter("repro_things_total", "Things.")
        counter.inc()
        counter.inc(2.5)
        assert counter.value() == 3.5

    def test_negative_increment_rejected(self):
        counter = Counter("repro_things_total", "Things.")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_labelled_series_are_independent(self):
        counter = Counter("repro_spend_total", "Spend.", labelnames=("tenant",))
        counter.inc(3, tenant="a")
        counter.inc(4, tenant="b")
        assert counter.value(tenant="a") == 3
        assert counter.value(tenant="b") == 4

    def test_wrong_label_set_rejected(self):
        counter = Counter("repro_spend_total", "Spend.", labelnames=("tenant",))
        with pytest.raises(ValueError):
            counter.inc(1)
        with pytest.raises(ValueError):
            counter.inc(1, tenant="a", extra="b")


class TestGauge:
    def test_set_and_add(self):
        gauge = Gauge("repro_depth", "Depth.")
        gauge.set(5)
        gauge.add(-2)
        assert gauge.value() == 3


class TestHistogram:
    def test_buckets_are_cumulative_with_inf(self):
        histogram = Histogram("repro_wait_seconds", "Wait.", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            histogram.observe(value)
        rendered = "\n".join(histogram.samples())
        assert 'repro_wait_seconds_bucket{le="0.1"} 1' in rendered
        assert 'repro_wait_seconds_bucket{le="1"} 2' in rendered
        assert 'repro_wait_seconds_bucket{le="+Inf"} 3' in rendered
        assert histogram.count() == 3
        assert histogram.sum() == pytest.approx(5.55)

    def test_empty_or_duplicate_buckets_rejected_unsorted_sorted(self):
        with pytest.raises(ValueError):
            Histogram("repro_x", "X.", buckets=())
        with pytest.raises(ValueError):
            Histogram("repro_x", "X.", buckets=(1.0, 1.0))
        assert Histogram("repro_x", "X.", buckets=(2.0, 1.0)).buckets == (1.0, 2.0)


class TestRegistry:
    def test_duplicate_name_rejected(self):
        registry = MetricsRegistry()
        registry.counter("repro_a_total", "A.")
        with pytest.raises(ValueError):
            registry.gauge("repro_a_total", "A again.")

    def test_bad_metric_name_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("bad name", "Bad.")

    def test_render_is_valid_exposition(self):
        registry = MetricsRegistry()
        registry.counter("repro_req_total", "Requests.", labelnames=("status",)).inc(
            1, status="ok"
        )
        registry.gauge("repro_depth", "Depth.").set(2)
        registry.histogram("repro_wait_seconds", "Wait.", buckets=(0.5,)).observe(
            1.25e-05
        )
        text = registry.render()
        assert text.endswith("\n")
        assert validate_exposition(text) == []

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_esc_total", "Esc.", labelnames=("tenant",))
        counter.inc(1, tenant='we"ird\\name\nline')
        text = registry.render()
        assert '\\"' in text and "\\\\" in text and "\\n" in text
        assert validate_exposition(text) == []

    def test_concurrent_increments_are_lock_safe(self):
        counter = Counter("repro_hot_total", "Hot.")

        def spin():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=spin) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value() == 8000


class TestValidator:
    def test_flags_missing_type_and_help(self):
        problems = validate_exposition("repro_orphan_total 1\n")
        assert any("TYPE" in problem for problem in problems)
        assert any("HELP" in problem for problem in problems)

    def test_flags_malformed_sample(self):
        text = "# HELP repro_x X.\n# TYPE repro_x counter\nrepro_x one\n"
        assert any("malformed sample" in problem for problem in validate_exposition(text))

    def test_accepts_scientific_notation(self):
        text = "# HELP repro_x X.\n# TYPE repro_x gauge\nrepro_x 1.2e-05\n"
        assert validate_exposition(text) == []
