"""Tests for the experiment harness (results tables and shared context)."""

import pytest

from repro.experiments.harness import OMEGA_VARIANTS, ExperimentContext, ExperimentResult


class TestExperimentResult:
    def test_add_row_and_columns(self):
        result = ExperimentResult(name="demo", headers=["name", "value"])
        result.add_row("a", 1.0)
        result.add_row("b", 2.0)
        assert result.column("value") == [1.0, 2.0]
        assert result.row_by_key("b") == ["b", 2.0]

    def test_add_row_validates_width(self):
        result = ExperimentResult(name="demo", headers=["a", "b"])
        with pytest.raises(ValueError):
            result.add_row(1)

    def test_unknown_column_and_row(self):
        result = ExperimentResult(name="demo", headers=["a"])
        result.add_row(1)
        with pytest.raises(KeyError):
            result.column("missing")
        with pytest.raises(KeyError):
            result.row_by_key("missing")

    def test_to_text_contains_headers_rows_and_notes(self):
        result = ExperimentResult(name="demo", headers=["key", "value"], notes="a note")
        result.add_row("x", 0.123456)
        text = result.to_text()
        assert "demo" in text
        assert "key" in text
        assert "0.1235" in text
        assert "a note" in text

    def test_to_text_with_no_rows(self):
        result = ExperimentResult(name="empty", headers=["a"])
        assert "empty" in result.to_text()


class TestExperimentContext:
    @pytest.fixture(scope="class")
    def context(self):
        return ExperimentContext(
            num_raw_records=4000, synthetic_records=150, k=10, seed=3
        )

    def test_omega_variants_cover_the_paper_settings(self):
        assert set(OMEGA_VARIANTS) == {
            "omega=11",
            "omega=10",
            "omega=9",
            "omega in [9-11]",
            "omega in [5-11]",
        }

    def test_dataset_and_splits_are_cached(self, context):
        assert context.dataset is context.dataset
        assert context.splits is context.splits

    def test_model_cached_per_variant(self, context):
        assert context.model("omega=9") is context.model("omega=9")
        assert context.model("omega=9") is not context.model("omega=10")

    def test_unknown_variant_rejected(self, context):
        with pytest.raises(KeyError):
            context.model("omega=99")

    def test_model_for_arbitrary_omega(self, context):
        model = context.model_for_omega(7)
        assert model.omegas == (7,)

    def test_synthetic_dataset_has_requested_size(self, context):
        synthetic = context.synthetic_dataset("omega=11")
        assert len(synthetic) == context.synthetic_records

    def test_marginals_dataset_size(self, context):
        assert len(context.marginals_dataset) == context.synthetic_records

    def test_reals_dataset_size(self, context):
        assert len(context.reals_dataset()) == context.synthetic_records

    def test_comparison_datasets_keys(self, context):
        datasets = context.comparison_datasets(["omega=11"])
        assert set(datasets) == {"reals", "marginals", "omega=11"}

    def test_max_table_cells_adaptive_and_disableable(self, context):
        assert context.max_table_cells() >= 100
        fixed = ExperimentContext(num_raw_records=4000, adaptive_table_cells=False)
        assert fixed.max_table_cells() is None

    def test_generation_config_reflects_context(self, context):
        config = context.generation_config()
        assert config.privacy.k == context.k
