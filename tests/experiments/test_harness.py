"""Tests for the experiment harness (results tables and shared context)."""

import pytest

from repro.experiments.harness import OMEGA_VARIANTS, ExperimentContext, ExperimentResult


class TestExperimentResult:
    def test_add_row_and_columns(self):
        result = ExperimentResult(name="demo", headers=["name", "value"])
        result.add_row("a", 1.0)
        result.add_row("b", 2.0)
        assert result.column("value") == [1.0, 2.0]
        assert result.row_by_key("b") == ["b", 2.0]

    def test_add_row_validates_width(self):
        result = ExperimentResult(name="demo", headers=["a", "b"])
        with pytest.raises(ValueError):
            result.add_row(1)

    def test_unknown_column_and_row(self):
        result = ExperimentResult(name="demo", headers=["a"])
        result.add_row(1)
        with pytest.raises(KeyError):
            result.column("missing")
        with pytest.raises(KeyError):
            result.row_by_key("missing")

    def test_to_text_contains_headers_rows_and_notes(self):
        result = ExperimentResult(name="demo", headers=["key", "value"], notes="a note")
        result.add_row("x", 0.123456)
        text = result.to_text()
        assert "demo" in text
        assert "key" in text
        assert "0.1235" in text
        assert "a note" in text

    def test_to_text_with_no_rows(self):
        result = ExperimentResult(name="empty", headers=["a"])
        assert "empty" in result.to_text()


class TestExperimentContext:
    @pytest.fixture(scope="class")
    def context(self):
        return ExperimentContext(
            num_raw_records=4000, synthetic_records=150, k=10, seed=3
        )

    def test_omega_variants_cover_the_paper_settings(self):
        assert set(OMEGA_VARIANTS) == {
            "omega=11",
            "omega=10",
            "omega=9",
            "omega in [9-11]",
            "omega in [5-11]",
        }

    def test_dataset_and_splits_are_cached(self, context):
        assert context.dataset is context.dataset
        assert context.splits is context.splits

    def test_model_cached_per_variant(self, context):
        assert context.model("omega=9") is context.model("omega=9")
        assert context.model("omega=9") is not context.model("omega=10")

    def test_unknown_variant_rejected(self, context):
        with pytest.raises(KeyError):
            context.model("omega=99")

    def test_model_for_arbitrary_omega(self, context):
        model = context.model_for_omega(7)
        assert model.omegas == (7,)

    def test_synthetic_dataset_has_requested_size(self, context):
        synthetic = context.synthetic_dataset("omega=11")
        assert len(synthetic) == context.synthetic_records

    def test_marginals_dataset_size(self, context):
        assert len(context.marginals_dataset) == context.synthetic_records

    def test_reals_dataset_size(self, context):
        assert len(context.reals_dataset()) == context.synthetic_records

    def test_comparison_datasets_keys(self, context):
        datasets = context.comparison_datasets(["omega=11"])
        assert set(datasets) == {"reals", "marginals", "omega=11"}

    def test_max_table_cells_adaptive_and_disableable(self, context):
        assert context.max_table_cells() >= 100
        fixed = ExperimentContext(num_raw_records=4000, adaptive_table_cells=False)
        assert fixed.max_table_cells() is None

    def test_injected_dataset_drives_the_context(self):
        from repro.core.run_store import dataset_fingerprint
        from repro.testing.scenarios import get_scenario

        scenario = get_scenario("toy-correlated")
        dataset = scenario.dataset(seed=0)
        context = ExperimentContext(dataset=dataset, k=8, seed=3)
        assert context.dataset is dataset
        assert context.splits.total_records == len(dataset)
        # The injected data's fingerprint keys the context's artifacts, so a
        # scenario-driven context can never collide with an ACS-driven one.
        assert context._artifact_payload()["dataset"] == dataset_fingerprint(dataset)
        acs_context = ExperimentContext(num_raw_records=2000, seed=3)
        assert "dataset" not in acs_context._artifact_payload()

    def test_generation_config_reflects_context(self, context):
        config = context.generation_config()
        assert config.privacy.k == context.k


class TestContextRngStreams:
    def test_streams_are_seedsequence_children(self):
        import numpy as np

        context = ExperimentContext(num_raw_records=4000, seed=7)
        children = np.random.SeedSequence(7).spawn(3)
        for offset, child in enumerate(children):
            expected = np.random.default_rng(child).integers(2**63, size=4)
            actual = context.rng(offset).integers(2**63, size=4)
            assert np.array_equal(expected, actual)

    def test_adjacent_seeds_do_not_share_streams(self):
        import numpy as np

        # Regression: with the old seed + offset derivation, (seed=7,
        # offset=1) and (seed=8, offset=0) were the same stream.
        first = ExperimentContext(num_raw_records=4000, seed=7).rng(1)
        second = ExperimentContext(num_raw_records=4000, seed=8).rng(0)
        assert not np.array_equal(
            first.integers(2**63, size=8), second.integers(2**63, size=8)
        )


class TestContextRunStore:
    _SUBPROCESS_SCRIPT = """
import sys
from repro.core.run_store import RunStore
from repro.experiments.harness import ExperimentContext

context = ExperimentContext(
    num_raw_records=4000, synthetic_records=50, k=10, seed=3,
    run_store=RunStore(sys.argv[1]),
)
model = context.model("omega=9")
print("edges:", model.structure.num_edges)
"""

    def test_model_reused_across_processes(self, tmp_path, monkeypatch):
        # Process 1 (a real subprocess) fits the model and stores it; process
        # 2 (this test) must load it from the store without refitting.
        import subprocess
        import sys

        from repro.core.run_store import RunStore

        store_path = tmp_path / "store"
        completed = subprocess.run(
            [sys.executable, "-c", self._SUBPROCESS_SCRIPT, str(store_path)],
            capture_output=True,
            text=True,
            timeout=600,
        )
        assert completed.returncode == 0, completed.stderr

        import repro.experiments.harness as harness_module

        def _boom(*args, **kwargs):
            raise AssertionError("the stored model must be loaded, not refitted")

        monkeypatch.setattr(harness_module, "fit_bayesian_network", _boom)
        context = ExperimentContext(
            num_raw_records=4000, synthetic_records=50, k=10, seed=3,
            run_store=RunStore(store_path),
        )
        model = context.model("omega=9")
        assert model.omegas == (9,)
        # The fit's privacy spend travels with the artifact.
        assert len(context.accountant.entries) > 0

    def test_synthetics_reused_within_store(self, tmp_path):
        import numpy as np

        from repro.core.run_store import RunStore

        store = RunStore(tmp_path / "store")
        make = lambda: ExperimentContext(
            num_raw_records=4000, synthetic_records=40, k=10, seed=3, run_store=store
        )
        first = make().synthetic_dataset("omega=9")
        fresh_context = make()
        second = fresh_context.synthetic_dataset("omega=9")
        assert np.array_equal(first.data, second.data)
