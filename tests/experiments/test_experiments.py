"""Smoke and shape tests for every table / figure experiment.

These run on a deliberately tiny context so they verify wiring, table shapes
and basic sanity (not the paper's quantitative trends, which the benchmarks
regenerate at a larger scale).
"""

import pytest

from repro.experiments import (
    ExperimentContext,
    run_classifier_comparison,
    run_dataset_summary,
    run_distinguishing_game,
    run_dp_classifier_comparison,
    run_model_accuracy,
    run_model_improvement,
    run_pairwise_distance,
    run_pass_rate_sweep,
    run_performance_measurement,
    run_single_attribute_distance,
)
from repro.experiments.dataset_summary import run_attribute_table


@pytest.fixture(scope="module")
def context():
    return ExperimentContext(num_raw_records=5000, synthetic_records=150, k=10, seed=5)


VARIANTS = ["omega=11", "omega=9"]


class TestDatasetSummary:
    def test_attribute_table_lists_all_attributes(self, context):
        result = run_attribute_table(context)
        assert len(result.rows) == 11
        assert result.row_by_key("WAGP")[2] == 2

    def test_cleaning_summary(self, context):
        result = run_dataset_summary(context)
        raw = result.row_by_key("raw records")[1]
        clean = result.row_by_key("clean records")[1]
        assert clean < raw
        assert result.row_by_key("attributes")[1] == 11


class TestModelAccuracy:
    def test_figure2_rows_and_ranges(self, context):
        result = run_model_accuracy(context, num_eval_records=60, forest_train_records=800)
        assert len(result.rows) == 11
        for row in result.rows:
            for value in row[1:]:
                assert 0.0 <= value <= 1.0

    def test_figure1_improvement_table(self, context):
        result = run_model_improvement(
            context, num_eval_records=60, epsilons=(None, 1.0), repeats=1
        )
        assert result.headers == ["attribute", "no noise", "epsilon=1.0"]
        assert len(result.rows) == 11
        for row in result.rows:
            for value in row[1:]:
                assert value <= 1.0  # improvement can be negative, never above 100%


class TestStatisticalDistance:
    def test_figure3_rows(self, context):
        result = run_single_attribute_distance(context, variants=VARIANTS)
        names = result.column("dataset")
        assert "reals" in names and "marginals" in names and "omega=11" in names
        for row in result.rows:
            assert 0.0 <= row[1] <= 1.0

    def test_figure4_rows(self, context):
        result = run_pairwise_distance(context, variants=["omega=11"])
        for row in result.rows:
            assert 0.0 <= row[1] <= 1.0


class TestClassifierComparisons:
    def test_table3_shape(self, context):
        result = run_classifier_comparison(context, variants=["omega=11"])
        assert "reals" in result.column("train dataset")
        for row in result.rows:
            for value in row[1:]:
                assert 0.0 <= value <= 1.0

    def test_table4_shape(self, context):
        result = run_dp_classifier_comparison(context, variants=["omega=11"])
        labels = result.column("training")
        assert "non-private (reals)" in labels
        assert "objective perturbation (reals)" in labels
        for row in result.rows:
            assert 0.0 <= row[1] <= 1.0
            assert 0.0 <= row[2] <= 1.0


class TestDistinguishingGame:
    def test_table5_shape(self, context):
        result = run_distinguishing_game(context, variants=["omega=11"])
        assert len(result.rows) >= 1
        for row in result.rows:
            assert 0.0 <= row[1] <= 1.0
            assert 0.0 <= row[2] <= 1.0


class TestPerformanceAndPassRate:
    def test_figure5_rows_are_cumulative(self, context):
        result = run_performance_measurement(context, checkpoints=(20, 40))
        produced = result.column("synthetics produced")
        assert produced == sorted(produced)
        totals = result.column("total (s)")
        assert all(later >= earlier for earlier, later in zip(totals, totals[1:]))

    def test_figure6_pass_rate_decreases_with_k(self, context):
        result = run_pass_rate_sweep(
            context, k_values=(5, 200), omegas=(9,), num_candidates=40
        )
        high_k_rate = result.rows[-1][1]
        low_k_rate = result.rows[0][1]
        assert low_k_rate >= high_k_rate
        assert 0.0 <= high_k_rate <= 1.0
