"""Shared fixtures for the test suite.

Heavy objects (the ACS-like dataset, fitted generative models) are
session-scoped so the whole suite stays fast; individual tests that need to
mutate state build their own small instances instead.  The small-dataset and
schema builders live in the conformance scenario registry
(:mod:`repro.testing.scenarios`) so tests and benchmarks draw from one source.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.acs import load_acs
from repro.datasets.dataset import Dataset
from repro.datasets.schema import Schema
from repro.datasets.splits import split_dataset
from repro.generative.builder import GenerativeModelSpec, fit_bayesian_network, fit_marginal_model
from repro.testing import scenarios


@pytest.fixture(scope="session")
def toy_schema() -> Schema:
    """A small 4-attribute schema with one bucketized numerical attribute."""
    return scenarios.toy_schema()


@pytest.fixture(scope="session")
def toy_dataset(toy_schema: Schema) -> Dataset:
    """A 2000-record correlated toy dataset."""
    return Dataset(
        toy_schema, scenarios.correlated_toy_matrix(2000, np.random.default_rng(0))
    )


@pytest.fixture(scope="session")
def toy_dataset_small(toy_schema: Schema) -> Dataset:
    """A 300-record correlated toy dataset (for quick structural tests)."""
    return Dataset(
        toy_schema, scenarios.correlated_toy_matrix(300, np.random.default_rng(1))
    )


@pytest.fixture(scope="session")
def acs_dataset() -> Dataset:
    """A small cleaned ACS-like dataset shared across the suite."""
    return load_acs(num_records=6000, seed=13)


@pytest.fixture(scope="session")
def acs_splits(acs_dataset: Dataset):
    """DS / DT / DP / test splits of the shared ACS-like dataset."""
    return split_dataset(acs_dataset, rng=np.random.default_rng(3))


@pytest.fixture(scope="session")
def unnoised_model(acs_splits):
    """A non-private Bayesian-network synthesizer fitted on the shared splits."""
    spec = GenerativeModelSpec(omega=9, epsilon_structure=None, epsilon_parameters=None)
    return fit_bayesian_network(
        acs_splits.structure, acs_splits.parameters, spec=spec, rng=np.random.default_rng(4)
    )


@pytest.fixture(scope="session")
def marginal_model(acs_splits):
    """A non-private marginals baseline fitted on the shared splits."""
    return fit_marginal_model(acs_splits.parameters, epsilon=None, rng=np.random.default_rng(5))


@pytest.fixture()
def rng() -> np.random.Generator:
    """A fresh deterministic RNG per test."""
    return np.random.default_rng(1234)
