"""Exit codes, report formats and baseline round-trips of ``repro lint``."""

from __future__ import annotations

import json

import pytest

from repro.analysis.baseline import Baseline
from repro.analysis.cli import main as lint_main
from repro.analysis.core import lint_paths
from repro.cli import main as repro_main

pytestmark = [pytest.mark.analysis, pytest.mark.conformance_smoke]

VIOLATING = (
    "import time\n"
    "def stamp():\n"
    "    return time.time()\n"
)
CLEAN = (
    "def identity(value):\n"
    "    return value\n"
)


@pytest.fixture
def violating_file(tmp_path):
    path = tmp_path / "mod.py"
    path.write_text(VIOLATING)
    return path


@pytest.fixture
def clean_file(tmp_path):
    path = tmp_path / "mod.py"
    path.write_text(CLEAN)
    return path


class TestExitCodes:
    def test_violation_exits_nonzero(self, violating_file, capsys):
        assert lint_main([str(violating_file), "--no-baseline"]) == 1
        assert "det-wall-clock" in capsys.readouterr().out

    def test_clean_exits_zero(self, clean_file, capsys):
        assert lint_main([str(clean_file), "--no-baseline"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_missing_path_is_usage_error(self, tmp_path):
        assert lint_main([str(tmp_path / "nope.py")]) == 2

    def test_bad_select_is_usage_error(self, clean_file):
        assert lint_main([str(clean_file), "--select", "nonsense"]) == 2

    def test_select_can_mask_findings(self, violating_file):
        assert lint_main([str(violating_file), "--no-baseline", "--select", "rng"]) == 0

    def test_syntax_error_fails_the_run(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def broken(:\n")
        assert lint_main([str(bad), "--no-baseline"]) == 1


class TestReproCliIntegration:
    def test_lint_subcommand_delegates(self, violating_file):
        assert repro_main(["lint", str(violating_file), "--no-baseline"]) == 1

    def test_lint_subcommand_clean(self, clean_file):
        assert repro_main(["lint", str(clean_file), "--no-baseline"]) == 0

    def test_list_rules(self, capsys):
        assert repro_main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("rng-module-call", "privacy-unrecorded-noise",
                        "lock-guarded-attr", "det-wall-clock"):
            assert rule_id in out


class TestJsonReport:
    def test_json_stdout(self, violating_file, capsys):
        assert lint_main([str(violating_file), "--no-baseline", "--format", "json"]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["ok"] is False
        assert report["counts"] == {"det-wall-clock": 1}
        (finding,) = report["findings"]
        assert finding["rule"] == "det-wall-clock"
        assert finding["symbol"] == "stamp"

    def test_output_file_written_even_for_text_format(self, violating_file, tmp_path):
        report_path = tmp_path / "report.json"
        lint_main(
            [str(violating_file), "--no-baseline", "--output", str(report_path)]
        )
        report = json.loads(report_path.read_text())
        assert report["findings"][0]["rule"] == "det-wall-clock"


class TestBaseline:
    def test_write_then_apply_suppresses(self, violating_file, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        assert lint_main(
            [str(violating_file), "--write-baseline", "--baseline", str(baseline)]
        ) == 0
        capsys.readouterr()
        assert lint_main([str(violating_file), "--baseline", str(baseline)]) == 0

    def test_stale_entries_reported(self, tmp_path, capsys):
        # Baseline an old violation, then "fix" the file: the entry is stale.
        target = tmp_path / "mod.py"
        target.write_text(VIOLATING)
        baseline = tmp_path / "baseline.json"
        lint_main([str(target), "--write-baseline", "--baseline", str(baseline)])
        target.write_text(CLEAN)
        capsys.readouterr()
        assert lint_main([str(target), "--baseline", str(baseline)]) == 0
        assert "stale baseline entry" in capsys.readouterr().out

    def test_baseline_does_not_cover_new_findings(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text(VIOLATING)
        baseline = tmp_path / "baseline.json"
        lint_main([str(target), "--write-baseline", "--baseline", str(baseline)])
        target.write_text(
            VIOLATING + "def stamp_again():\n    return time.time()\n"
        )
        assert lint_main([str(target), "--baseline", str(baseline)]) == 1

    def test_baseline_keys_survive_line_drift(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text(VIOLATING)
        result = lint_paths([target])
        baseline = Baseline.from_findings(result.findings)
        # Push the violation down 5 lines; the (path, symbol, rule) key holds.
        target.write_text("# a\n# b\n# c\n# d\n# e\n" + VIOLATING)
        drifted = lint_paths([target])
        baseline.apply(drifted)
        assert drifted.ok
        assert drifted.baseline_suppressed == 1
