"""The real source tree must lint clean under the committed baseline.

This is the conformance-smoke guard the CI lint job relies on: any new
violation in ``src/repro`` — an unguarded touch of a ``guarded-by`` attribute,
a constant-seed ``default_rng``, an unaccounted noise draw — fails this test
(and the build) until it is fixed or explicitly, auditable-y suppressed.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import lint_paths
from repro.analysis.baseline import Baseline

pytestmark = [pytest.mark.analysis, pytest.mark.conformance_smoke]

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC_TREE = REPO_ROOT / "src" / "repro"
BASELINE = REPO_ROOT / "lint-baseline.json"


def test_source_tree_exists():
    assert SRC_TREE.is_dir()
    assert BASELINE.is_file()


def test_src_lints_clean_with_committed_baseline():
    result = lint_paths([SRC_TREE], root=REPO_ROOT)
    Baseline.load(BASELINE).apply(result)
    assert not result.parse_errors, result.parse_errors
    assert result.ok, "\n".join(
        f"{f.location} {f.rule} {f.message}" for f in result.findings
    )


def test_committed_baseline_has_no_stale_entries():
    result = lint_paths([SRC_TREE], root=REPO_ROOT)
    baseline = Baseline.load(BASELINE)
    baseline.apply(result)
    assert result.stale_baseline_keys == []


def test_baseline_is_small_and_annotated():
    """Every committed suppression carries an audit note, and the baseline
    only covers operational-timestamp reads and audited shutdown-path
    swallows (never privacy or lock rules)."""
    baseline = Baseline.load(BASELINE)
    assert 0 < len(baseline.counts) <= 10
    for key in baseline.counts:
        assert key in baseline.notes, f"baseline entry {key} lacks an audit note"
        rule = key.split("::")[2]
        assert rule in ("det-wall-clock", "robust-swallowed-exception")


@pytest.mark.parametrize("family", ["rng", "privacy", "lock", "det", "robust", "obs"])
def test_each_family_runs_clean_standalone(family):
    result = lint_paths([SRC_TREE], select=family, root=REPO_ROOT)
    Baseline.load(BASELINE).apply(result)
    assert result.ok, "\n".join(
        f"{f.location} {f.rule} {f.message}" for f in result.findings
    )
