"""Per-rule fixture pairs for the static invariant checker.

Every rule gets a minimal violating snippet and a minimal clean twin, checked
through :func:`repro.analysis.check_source` so the fixtures live next to the
assertions instead of in a fixture tree (and never trip the checker's own
``tests/`` path suppression).
"""

from __future__ import annotations

import pytest

from repro.analysis import all_rules, check_source

pytestmark = [pytest.mark.analysis, pytest.mark.conformance_smoke]


def rules_fired(source: str, path: str = "src/repro/core/mod.py") -> list[str]:
    return [finding.rule for finding in check_source(source, path=path)]


# --------------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------------- #
class TestRegistry:
    def test_all_families_registered(self):
        families = {rule.family for rule in all_rules()}
        assert families == {"rng", "privacy", "lock", "det", "robust", "obs"}

    def test_rule_ids_unique_and_prefixed(self):
        rules = all_rules()
        ids = [rule.id for rule in rules]
        assert len(ids) == len(set(ids))
        for rule in rules:
            assert rule.id.startswith(f"{rule.family}-")
            assert rule.summary


# --------------------------------------------------------------------------- #
# rng family
# --------------------------------------------------------------------------- #
class TestRngModuleCall:
    def test_numpy_global_call_flagged(self):
        source = (
            "import numpy as np\n"
            "def draw(count):\n"
            "    return np.random.normal(size=count)\n"
        )
        assert "rng-module-call" in rules_fired(source)

    def test_stdlib_random_flagged(self):
        source = (
            "import random\n"
            "def pick(items):\n"
            "    return random.choice(items)\n"
        )
        assert "rng-module-call" in rules_fired(source)

    def test_explicit_generator_clean(self):
        source = (
            "def draw(count, rng):\n"
            "    return rng.normal(size=count)\n"
        )
        assert "rng-module-call" not in rules_fired(source)

    def test_generator_constructors_allowed(self):
        source = (
            "import numpy as np\n"
            "def make(seed):\n"
            "    return np.random.default_rng(seed)\n"
        )
        assert "rng-module-call" not in rules_fired(source)


class TestRngConstantSeed:
    def test_unseeded_default_rng_flagged(self):
        source = (
            "import numpy as np\n"
            "def sample():\n"
            "    rng = np.random.default_rng()\n"
            "    return rng\n"
        )
        assert "rng-constant-seed" in rules_fired(source)

    def test_constant_seed_flagged(self):
        source = (
            "import numpy as np\n"
            "def sample():\n"
            "    return np.random.default_rng(0)\n"
        )
        assert "rng-constant-seed" in rules_fired(source)

    def test_hidden_constant_fallback_flagged(self):
        source = (
            "import numpy as np\n"
            "def sample(seed=None):\n"
            "    return np.random.default_rng(seed if seed is not None else 0)\n"
        )
        assert "rng-constant-seed" in rules_fired(source)

    def test_threaded_seed_clean(self):
        source = (
            "import numpy as np\n"
            "def sample(seed):\n"
            "    return np.random.default_rng(seed)\n"
        )
        assert "rng-constant-seed" not in rules_fired(source)

    def test_constant_seed_fine_in_tests(self):
        source = (
            "import numpy as np\n"
            "def test_sample():\n"
            "    return np.random.default_rng(0)\n"
        )
        assert rules_fired(source, path="tests/core/test_mod.py") == []


class TestRngMissingParam:
    def test_hidden_stream_flagged(self):
        source = (
            "def sample_rows(count):\n"
            "    gen = make_stream()\n"
            "    return gen.normal(size=count)\n"
        )
        assert "rng-missing-param" in rules_fired(source)

    def test_rng_parameter_clean(self):
        source = (
            "def sample_rows(count, rng):\n"
            "    return rng.normal(size=count)\n"
        )
        assert "rng-missing-param" not in rules_fired(source)

    def test_seed_attribute_counts_as_source(self):
        # `job.base_seed` is explicit plumbing even without a named parameter.
        source = (
            "def worker(job):\n"
            "    gen = chunk_rng(job.base_seed, 0)\n"
            "    return gen.normal()\n"
        )
        assert "rng-missing-param" not in rules_fired(source)

    def test_closure_inherits_enclosing_rng(self):
        source = (
            "def outer(rng):\n"
            "    def inner(count):\n"
            "        return rng.normal(size=count)\n"
            "    return inner\n"
        )
        assert "rng-missing-param" not in rules_fired(source)

    def test_stratified_sampler_without_rng_flagged(self):
        source = (
            "def pick_records(num_records, size):\n"
            "    gen = make_stream()\n"
            "    return stratified_sample_indices(num_records, size, gen)\n"
        )
        assert "rng-missing-param" in rules_fired(source)

    def test_stratified_sampler_with_rng_clean(self):
        source = (
            "def pick_records(num_records, size, rng):\n"
            "    return stratified_sample_indices(num_records, size, rng)\n"
        )
        assert "rng-missing-param" not in rules_fired(source)


# --------------------------------------------------------------------------- #
# privacy family
# --------------------------------------------------------------------------- #
PRIVACY_PATH = "src/repro/privacy/mod.py"


class TestPrivacyUnrecordedNoise:
    def test_unaccounted_noise_flagged(self):
        source = (
            "def add_noise(values, rng):\n"
            "    return values + laplace_noise(1.0, rng)\n"
        )
        assert "privacy-unrecorded-noise" in rules_fired(source, path=PRIVACY_PATH)

    def test_spend_in_frame_clean(self):
        source = (
            "def add_noise(values, rng, accountant):\n"
            "    accountant.spend('noise', 1.0)\n"
            "    return values + laplace_noise(1.0, rng)\n"
        )
        assert "privacy-unrecorded-noise" not in rules_fired(source, path=PRIVACY_PATH)

    def test_spend_in_local_caller_clean(self):
        source = (
            "def release(values, rng, accountant):\n"
            "    accountant.spend('release', 1.0)\n"
            "    return _noisy(values, rng)\n"
            "def _noisy(values, rng):\n"
            "    return values + laplace_noise(1.0, rng)\n"
        )
        assert "privacy-unrecorded-noise" not in rules_fired(source, path=PRIVACY_PATH)

    def test_rule_scoped_to_privacy_paths(self):
        source = (
            "def add_noise(values, rng):\n"
            "    return values + laplace_noise(1.0, rng)\n"
        )
        assert "privacy-unrecorded-noise" not in rules_fired(
            source, path="src/repro/service/mod.py"
        )


class TestPrivacyReadBeforeSpend:
    def test_read_before_spend_flagged(self):
        source = (
            "def run(accountant):\n"
            "    before = accountant.total_guarantee()\n"
            "    accountant.spend('q', 0.5)\n"
            "    return before\n"
        )
        assert "privacy-read-before-spend" in rules_fired(source, path=PRIVACY_PATH)

    def test_read_after_spend_clean(self):
        source = (
            "def run(accountant):\n"
            "    accountant.spend('q', 0.5)\n"
            "    return accountant.total_guarantee()\n"
        )
        assert "privacy-read-before-spend" not in rules_fired(source, path=PRIVACY_PATH)


# --------------------------------------------------------------------------- #
# lock family
# --------------------------------------------------------------------------- #
class TestLockGuardedAttr:
    VIOLATING = (
        "import threading\n"
        "class Counter:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self._value = 0  # repro: guarded-by[_lock]\n"
        "    def bump(self):\n"
        "        self._value += 1\n"
    )
    CLEAN = (
        "import threading\n"
        "class Counter:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self._value = 0  # repro: guarded-by[_lock]\n"
        "    def bump(self):\n"
        "        with self._lock:\n"
        "            self._value += 1\n"
    )

    def test_unguarded_touch_flagged(self):
        assert "lock-guarded-attr" in rules_fired(self.VIOLATING)

    def test_touch_under_lock_clean(self):
        assert "lock-guarded-attr" not in rules_fired(self.CLEAN)

    def test_init_exempt(self):
        # The declaration itself (in __init__) must not count as a violation.
        fired = [f for f in rules_fired(self.CLEAN) if f == "lock-guarded-attr"]
        assert fired == []

    def test_closure_does_not_inherit_lock(self):
        source = (
            "import threading\n"
            "class Counter:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._value = 0  # repro: guarded-by[_lock]\n"
            "    def bump_async(self):\n"
            "        with self._lock:\n"
            "            def task():\n"
            "                self._value += 1\n"
            "            return task\n"
        )
        assert "lock-guarded-attr" in rules_fired(source)

    def test_condition_on_owned_lock_holds_it(self):
        # A Condition built on the class's own lock shares that lock, so
        # `with self._cond:` guards `guarded-by[_lock]` state (EnginePool).
        source = (
            "import threading\n"
            "class Counter:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._cond = threading.Condition(self._lock)\n"
            "        self._value = 0  # repro: guarded-by[_lock]\n"
            "    def bump(self):\n"
            "        with self._cond:\n"
            "            self._value += 1\n"
            "            self._cond.notify_all()\n"
        )
        assert "lock-guarded-attr" not in rules_fired(source)

    def test_freestanding_condition_is_not_the_lock(self):
        # A Condition with its own internal lock does NOT guard _lock state.
        source = (
            "import threading\n"
            "class Counter:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._cond = threading.Condition()\n"
            "        self._value = 0  # repro: guarded-by[_lock]\n"
            "    def bump(self):\n"
            "        with self._cond:\n"
            "            self._value += 1\n"
        )
        assert "lock-guarded-attr" in rules_fired(source)


class TestLockRequiresHeld:
    def test_call_without_lock_flagged(self):
        source = (
            "import threading\n"
            "class Ledger:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "    def _add_locked(self, amount):  # repro: requires-lock[_lock]\n"
            "        pass\n"
            "    def add(self, amount):\n"
            "        self._add_locked(amount)\n"
        )
        assert "lock-requires-held" in rules_fired(source)

    def test_call_under_lock_clean(self):
        source = (
            "import threading\n"
            "class Ledger:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "    def _add_locked(self, amount):  # repro: requires-lock[_lock]\n"
            "        pass\n"
            "    def add(self, amount):\n"
            "        with self._lock:\n"
            "            self._add_locked(amount)\n"
        )
        assert "lock-requires-held" not in rules_fired(source)

    def test_annotated_callee_may_call_siblings(self):
        source = (
            "import threading\n"
            "class Ledger:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "    def _add_locked(self, amount):  # repro: requires-lock[_lock]\n"
            "        self._note_locked(amount)\n"
            "    def _note_locked(self, amount):  # repro: requires-lock[_lock]\n"
            "        pass\n"
        )
        assert "lock-requires-held" not in rules_fired(source)


class TestLockPickle:
    def test_getstate_keeping_lock_flagged(self):
        source = (
            "import threading\n"
            "class Holder:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "    def __getstate__(self):\n"
            "        return self.__dict__.copy()\n"
        )
        assert "lock-pickle" in rules_fired(source)

    def test_getstate_stripping_lock_clean(self):
        source = (
            "import threading\n"
            "class Holder:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "    def __getstate__(self):\n"
            "        state = self.__dict__.copy()\n"
            "        del state['_lock']\n"
            "        return state\n"
        )
        assert "lock-pickle" not in rules_fired(source)

    def test_reduce_on_lock_owner_flagged(self):
        source = (
            "import threading\n"
            "class Holder:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "    def __reduce__(self):\n"
            "        return (Holder, ())\n"
        )
        assert "lock-pickle" in rules_fired(source)


# --------------------------------------------------------------------------- #
# det family
# --------------------------------------------------------------------------- #
class TestDetWallClock:
    def test_time_time_flagged(self):
        source = (
            "import time\n"
            "def stamp():\n"
            "    return time.time()\n"
        )
        assert "det-wall-clock" in rules_fired(source)

    def test_datetime_now_flagged(self):
        source = (
            "import datetime\n"
            "def stamp():\n"
            "    return datetime.datetime.now()\n"
        )
        assert "det-wall-clock" in rules_fired(source)

    def test_perf_counter_clean(self):
        # Interval timing is fine; only absolute wall-clock reads are flagged.
        source = (
            "import time\n"
            "def measure():\n"
            "    return time.perf_counter()\n"
        )
        assert "det-wall-clock" not in rules_fired(source)


class TestDetSetIteration:
    def test_for_over_set_flagged(self):
        source = (
            "def collect(values):\n"
            "    out = []\n"
            "    for value in set(values):\n"
            "        out.append(value)\n"
            "    return out\n"
        )
        assert "det-set-iteration" in rules_fired(source)

    def test_comprehension_over_set_flagged(self):
        source = (
            "def collect(values):\n"
            "    return [value for value in {1, 2, 3}]\n"
        )
        assert "det-set-iteration" in rules_fired(source)

    def test_join_over_set_flagged(self):
        source = (
            "def label(names):\n"
            "    return ','.join({name for name in names})\n"
        )
        assert "det-set-iteration" in rules_fired(source)

    def test_sorted_set_clean(self):
        source = (
            "def collect(values):\n"
            "    out = []\n"
            "    for value in sorted(set(values)):\n"
            "        out.append(value)\n"
            "    return out\n"
        )
        assert "det-set-iteration" not in rules_fired(source)


class TestDetUnsortedJson:
    def test_digest_without_sort_keys_flagged(self):
        source = (
            "import json\n"
            "def digest(payload):\n"
            "    return json.dumps(payload)\n"
        )
        assert "det-unsorted-json" in rules_fired(source)

    def test_digest_with_sort_keys_clean(self):
        source = (
            "import json\n"
            "def digest(payload):\n"
            "    return json.dumps(payload, sort_keys=True)\n"
        )
        assert "det-unsorted-json" not in rules_fired(source)

    def test_non_digest_scope_not_flagged(self):
        source = (
            "import json\n"
            "def render(payload):\n"
            "    return json.dumps(payload)\n"
        )
        assert "det-unsorted-json" not in rules_fired(source)


# --------------------------------------------------------------------------- #
# robust family
# --------------------------------------------------------------------------- #
class TestRobustSwallowedException:
    def test_bare_except_pass_flagged(self):
        source = (
            "def teardown(worker):\n"
            "    try:\n"
            "        worker.stop()\n"
            "    except:\n"
            "        pass\n"
        )
        assert "robust-swallowed-exception" in rules_fired(source)

    def test_broad_except_pass_flagged_in_service(self):
        source = (
            "def settle(session):\n"
            "    try:\n"
            "        session.commit()\n"
            "    except Exception:\n"
            "        pass\n"
        )
        assert "robust-swallowed-exception" in rules_fired(
            source, path="src/repro/service/mod.py"
        )

    def test_broad_tuple_with_ellipsis_body_flagged(self):
        source = (
            "def drain(queue):\n"
            "    try:\n"
            "        queue.get()\n"
            "    except (ValueError, BaseException):\n"
            "        ...\n"
        )
        assert "robust-swallowed-exception" in rules_fired(source)

    def test_named_exception_pass_clean(self):
        source = (
            "from queue import Empty\n"
            "def drain(queue):\n"
            "    try:\n"
            "        queue.get_nowait()\n"
            "    except Empty:\n"
            "        pass\n"
        )
        assert "robust-swallowed-exception" not in rules_fired(source)

    def test_handled_broad_except_clean(self):
        source = (
            "def guard(task, log):\n"
            "    try:\n"
            "        task()\n"
            "    except Exception as exc:\n"
            "        log.warning('task failed: %s', exc)\n"
        )
        assert "robust-swallowed-exception" not in rules_fired(source)

    def test_out_of_scope_package_clean(self):
        source = (
            "def teardown(worker):\n"
            "    try:\n"
            "        worker.stop()\n"
            "    except Exception:\n"
            "        pass\n"
        )
        assert rules_fired(source, path="src/repro/experiments/mod.py") == []

    def test_inline_allow_suppresses(self):
        source = (
            "def teardown(worker):\n"
            "    try:\n"
            "        worker.stop()\n"
            "    # repro: allow[robust-swallowed-exception]\n"
            "    except Exception:\n"
            "        pass\n"
        )
        assert rules_fired(source) == []


# --------------------------------------------------------------------------- #
# obs family
# --------------------------------------------------------------------------- #
class TestObsUnclosedSpan:
    def test_bare_start_span_flagged(self):
        source = (
            "def handle(tracer, rid):\n"
            "    tracer.start_span(rid, 'request')\n"
            "    return do_work()\n"
        )
        assert "obs-unclosed-span" in rules_fired(source)

    def test_assigned_without_finally_flagged(self):
        source = (
            "def handle(tracer, rid):\n"
            "    span = tracer.start_span(rid, 'request')\n"
            "    result = do_work()\n"
            "    span.end()\n"
            "    return result\n"
        )
        assert "obs-unclosed-span" in rules_fired(source)

    def test_assigned_with_finally_end_clean(self):
        source = (
            "def handle(tracer, rid):\n"
            "    span = tracer.start_span(rid, 'request')\n"
            "    try:\n"
            "        return do_work()\n"
            "    finally:\n"
            "        span.end()\n"
        )
        assert "obs-unclosed-span" not in rules_fired(source)

    def test_context_manager_clean(self):
        source = (
            "def handle(tracer, rid):\n"
            "    with tracer.start_span(rid, 'request'):\n"
            "        return do_work()\n"
        )
        assert "obs-unclosed-span" not in rules_fired(source)

    def test_wrong_name_ended_in_finally_flagged(self):
        source = (
            "def handle(tracer, rid, other):\n"
            "    span = tracer.start_span(rid, 'request')\n"
            "    try:\n"
            "        return do_work()\n"
            "    finally:\n"
            "        other.end()\n"
        )
        assert "obs-unclosed-span" in rules_fired(source)

    def test_tests_and_out_of_scope_packages_clean(self):
        source = (
            "def handle(tracer, rid):\n"
            "    tracer.start_span(rid, 'request')\n"
        )
        assert rules_fired(source, path="src/repro/obs/mod.py") == []
        assert rules_fired(source, path="tests/service/test_mod.py") == []

    def test_inline_allow_suppresses(self):
        source = (
            "def handle(tracer, rid):\n"
            "    tracer.start_span(rid, 'request')  # repro: allow[obs-unclosed-span]\n"
        )
        assert rules_fired(source) == []


# --------------------------------------------------------------------------- #
# suppression and selection
# --------------------------------------------------------------------------- #
class TestSuppression:
    def test_inline_allow_suppresses_named_rule(self):
        source = (
            "import time\n"
            "def stamp():\n"
            "    return time.time()  # repro: allow[det-wall-clock]\n"
        )
        assert rules_fired(source) == []

    def test_allow_on_preceding_line_applies(self):
        source = (
            "import time\n"
            "def stamp():\n"
            "    # repro: allow[det-wall-clock]\n"
            "    return time.time()\n"
        )
        assert rules_fired(source) == []

    def test_allow_is_rule_specific(self):
        source = (
            "import time\n"
            "def stamp():\n"
            "    return time.time()  # repro: allow[rng-module-call]\n"
        )
        assert "det-wall-clock" in rules_fired(source)

    def test_select_restricts_families(self):
        source = (
            "import time\n"
            "import numpy as np\n"
            "def stamp():\n"
            "    np.random.shuffle([1])\n"
            "    return time.time()\n"
        )
        rng_only = [f.rule for f in check_source(source, select="rng")]
        assert rng_only == ["rng-module-call"]
