"""Tests for partition numbers, the privacy tests and Definition 1."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.privacy.plausible_deniability import (
    DeterministicPrivacyTest,
    PlausibleDeniabilityParams,
    RandomizedPrivacyTest,
    make_privacy_test,
    partition_number,
    partition_numbers,
    plausible_seed_count,
    satisfies_plausible_deniability,
)


class TestParams:
    def test_valid_defaults(self):
        params = PlausibleDeniabilityParams(k=50, gamma=4.0, epsilon0=1.0)
        assert params.is_randomized

    def test_deterministic_when_epsilon0_missing(self):
        assert not PlausibleDeniabilityParams(k=10, gamma=2.0).is_randomized

    def test_validation(self):
        with pytest.raises(ValueError):
            PlausibleDeniabilityParams(k=0, gamma=2.0)
        with pytest.raises(ValueError):
            PlausibleDeniabilityParams(k=5, gamma=1.0)
        with pytest.raises(ValueError):
            PlausibleDeniabilityParams(k=5, gamma=2.0, epsilon0=0.0)
        with pytest.raises(ValueError):
            PlausibleDeniabilityParams(k=5, gamma=2.0, max_check_plausible=0)
        with pytest.raises(ValueError):
            PlausibleDeniabilityParams(k=5, gamma=2.0, max_plausible=3)


class TestPartitionNumber:
    def test_probability_one_is_partition_zero(self):
        assert partition_number(1.0, gamma=2.0) == 0

    def test_zero_probability_has_no_partition(self):
        assert partition_number(0.0, gamma=2.0) == -1

    def test_boundaries_follow_the_paper_convention(self):
        # Partition i covers (gamma^-(i+1), gamma^-i]: the upper bound is inclusive.
        gamma = 2.0
        assert partition_number(0.5, gamma) == 1
        assert partition_number(0.51, gamma) == 0
        assert partition_number(0.25, gamma) == 2
        assert partition_number(0.26, gamma) == 1

    def test_rejects_invalid_inputs(self):
        with pytest.raises(ValueError):
            partition_number(0.5, gamma=1.0)
        with pytest.raises(ValueError):
            partition_number(1.5, gamma=2.0)
        with pytest.raises(ValueError):
            partition_number(-0.1, gamma=2.0)

    def test_vectorized_matches_scalar(self):
        probabilities = np.array([0.0, 1.0, 0.5, 0.3, 1e-6])
        vectorized = partition_numbers(probabilities, gamma=3.0)
        scalar = [partition_number(float(p), 3.0) for p in probabilities]
        assert vectorized.tolist() == scalar

    @given(
        st.floats(min_value=1e-12, max_value=1.0),
        st.floats(min_value=1.01, max_value=10.0),
    )
    @settings(max_examples=100)
    def test_partition_brackets_the_probability(self, probability, gamma):
        index = partition_number(probability, gamma)
        assert index >= 0
        upper = gamma ** (-index)
        lower = gamma ** (-(index + 1))
        assert probability <= upper * (1 + 1e-9)
        assert probability > lower * (1 - 1e-9)

    @given(
        st.floats(min_value=1e-9, max_value=1.0),
        st.floats(min_value=1e-9, max_value=1.0),
        st.floats(min_value=1.05, max_value=8.0),
    )
    @settings(max_examples=100)
    def test_same_partition_implies_gamma_ratio(self, p, q, gamma):
        # Records in the same bucket satisfy the Definition 1 ratio bound.
        if partition_number(p, gamma) == partition_number(q, gamma):
            ratio = p / q
            assert 1.0 / gamma - 1e-9 <= ratio <= gamma + 1e-9


class TestPlausibleSeedCount:
    def test_counts_records_in_seed_partition(self):
        seed_probability = 0.4
        dataset = np.array([0.4, 0.3, 0.05, 0.0, 0.45])
        count, partition, checked, saturated = plausible_seed_count(
            seed_probability, dataset, gamma=2.0
        )
        # Bucket of 0.4 with gamma=2 is (0.25, 0.5]: members 0.4, 0.3, 0.45.
        assert partition == 1
        assert count == 3
        assert checked == 5
        assert saturated is False

    def test_requires_positive_seed_probability(self):
        with pytest.raises(ValueError):
            plausible_seed_count(0.0, np.array([0.1]), gamma=2.0)

    def test_requires_1d_probabilities(self):
        with pytest.raises(ValueError):
            plausible_seed_count(0.5, np.zeros((2, 2)), gamma=2.0)

    def test_max_plausible_caps_count_and_reports_saturation(self, rng):
        dataset = np.full(1000, 0.4)
        count, _, checked, saturated = plausible_seed_count(
            0.4, dataset, gamma=2.0, max_plausible=10, rng=rng
        )
        assert count == 10
        # records_checked now reports the scanned subset size (aligned with
        # the batched path) rather than the early-break position.
        assert checked == 1000
        assert saturated is True

    def test_max_check_plausible_limits_scan(self, rng):
        dataset = np.full(1000, 0.4)
        count, _, checked, _ = plausible_seed_count(
            0.4, dataset, gamma=2.0, max_check_plausible=50, rng=rng
        )
        assert checked == 50
        assert count <= 50

    def test_early_termination_requires_rng(self):
        # Regression: the old code silently fell back to default_rng(0), so
        # every candidate scanned the records in the same "random" order — a
        # fixed biased subset under max_check_plausible.
        dataset = np.full(100, 0.4)
        with pytest.raises(ValueError, match="requires an rng"):
            plausible_seed_count(0.4, dataset, gamma=2.0, max_check_plausible=10)
        with pytest.raises(ValueError, match="requires an rng"):
            plausible_seed_count(0.4, dataset, gamma=2.0, max_plausible=5)

    def test_scan_order_varies_with_rng(self):
        # Regression companion: different rngs must scan different subsets.
        # Half the records are plausible, so a 20-record scan produces a
        # Binomial-ish spread of counts rather than a single fixed value.
        dataset = np.concatenate([np.full(50, 0.4), np.full(50, 1e-6)])
        counts = {
            plausible_seed_count(
                0.4,
                dataset,
                gamma=2.0,
                max_check_plausible=20,
                rng=np.random.default_rng(seed),
            )[0]
            for seed in range(30)
        }
        assert len(counts) > 1

    def test_satisfies_plausible_deniability(self):
        dataset = np.array([0.4] * 10 + [0.01] * 5)
        assert satisfies_plausible_deniability(0.4, dataset, k=10, gamma=2.0)
        assert not satisfies_plausible_deniability(0.4, dataset, k=11, gamma=2.0)

    def test_satisfies_rejects_bad_k(self):
        with pytest.raises(ValueError):
            satisfies_plausible_deniability(0.4, np.array([0.4]), k=0, gamma=2.0)


class TestDeterministicTest:
    def test_pass_and_fail(self, rng):
        params = PlausibleDeniabilityParams(k=3, gamma=2.0)
        test = DeterministicPrivacyTest(params)
        passing = test(0.4, np.array([0.4, 0.3, 0.45, 0.01]), rng)
        assert passing.passed and passing.plausible_seeds == 3
        failing = test(0.4, np.array([0.4, 0.01, 0.001]), rng)
        assert not failing.passed

    def test_result_is_truthy_when_passed(self, rng):
        params = PlausibleDeniabilityParams(k=1, gamma=2.0)
        result = DeterministicPrivacyTest(params)(0.5, np.array([0.5]), rng)
        assert bool(result)

    def test_threshold_reported(self, rng):
        params = PlausibleDeniabilityParams(k=7, gamma=2.0)
        result = DeterministicPrivacyTest(params)(0.5, np.array([0.5] * 10), rng)
        assert result.threshold == 7.0


class TestRandomizedTest:
    def test_requires_epsilon0(self):
        with pytest.raises(ValueError):
            RandomizedPrivacyTest(PlausibleDeniabilityParams(k=5, gamma=2.0))

    def test_clear_margin_always_passes(self, rng):
        params = PlausibleDeniabilityParams(k=5, gamma=2.0, epsilon0=1.0)
        test = RandomizedPrivacyTest(params)
        dataset = np.full(200, 0.4)
        results = [test(0.4, dataset, rng).passed for _ in range(50)]
        assert all(results)

    def test_clear_shortfall_always_fails(self, rng):
        params = PlausibleDeniabilityParams(k=100, gamma=2.0, epsilon0=1.0)
        test = RandomizedPrivacyTest(params)
        dataset = np.array([0.4, 0.4])
        results = [test(0.4, dataset, rng).passed for _ in range(50)]
        assert not any(results)

    def test_borderline_counts_pass_randomly(self, rng):
        params = PlausibleDeniabilityParams(k=10, gamma=2.0, epsilon0=1.0)
        test = RandomizedPrivacyTest(params)
        dataset = np.full(10, 0.4)  # exactly k plausible seeds
        outcomes = {test(0.4, dataset, rng).passed for _ in range(200)}
        assert outcomes == {True, False}

    def test_noisy_threshold_varies(self, rng):
        params = PlausibleDeniabilityParams(k=10, gamma=2.0, epsilon0=1.0)
        test = RandomizedPrivacyTest(params)
        thresholds = {test(0.4, np.full(20, 0.4), rng).threshold for _ in range(20)}
        assert len(thresholds) > 1


class TestFactory:
    def test_randomized_selected_with_epsilon0(self):
        test = make_privacy_test(PlausibleDeniabilityParams(k=5, gamma=2.0, epsilon0=1.0))
        assert isinstance(test, RandomizedPrivacyTest)

    def test_deterministic_selected_without_epsilon0(self):
        test = make_privacy_test(PlausibleDeniabilityParams(k=5, gamma=2.0))
        assert isinstance(test, DeterministicPrivacyTest)
