"""Tests for whole-dataset release accounting (the Section 8 extension)."""

import pytest

from repro.privacy.plausible_deniability import theorem1_guarantee
from repro.privacy.release import (
    dataset_release_guarantee,
    max_releasable_records,
)


class TestDatasetReleaseGuarantee:
    def test_single_record_matches_theorem1(self):
        guarantee = dataset_release_guarantee(1, k=50, gamma=4.0, epsilon0=1.0)
        epsilon, delta, t = theorem1_guarantee(50, 4.0, 1.0)
        assert guarantee.epsilon == pytest.approx(epsilon)
        assert guarantee.delta == pytest.approx(delta)
        assert guarantee.t == t

    def test_epsilon_grows_with_release_size(self):
        sizes = [1, 10, 100, 1000]
        epsilons = [
            dataset_release_guarantee(n, k=50, gamma=4.0, epsilon0=1.0).epsilon for n in sizes
        ]
        assert epsilons == sorted(epsilons)

    def test_advanced_composition_wins_for_large_releases(self):
        guarantee = dataset_release_guarantee(5000, k=100, gamma=4.0, epsilon0=0.1)
        assert guarantee.advanced_epsilon < guarantee.basic_epsilon
        assert guarantee.epsilon == guarantee.advanced_epsilon

    def test_basic_composition_wins_for_tiny_releases(self):
        guarantee = dataset_release_guarantee(2, k=50, gamma=4.0, epsilon0=1.0)
        assert guarantee.epsilon == guarantee.basic_epsilon

    def test_reports_both_bounds(self):
        guarantee = dataset_release_guarantee(10, k=50, gamma=4.0, epsilon0=1.0)
        assert guarantee.basic_epsilon == pytest.approx(10 * guarantee.per_record_epsilon)
        assert 0 < guarantee.basic_delta <= 1
        assert 0 < guarantee.advanced_delta <= 1

    def test_validation(self):
        with pytest.raises(ValueError):
            dataset_release_guarantee(0, k=50, gamma=4.0, epsilon0=1.0)


class TestMaxReleasableRecords:
    def test_inverts_the_composition(self):
        budget = 50.0
        count = max_releasable_records(budget, k=50, gamma=4.0, epsilon0=1.0)
        assert count >= 1
        within = dataset_release_guarantee(count, k=50, gamma=4.0, epsilon0=1.0)
        beyond = dataset_release_guarantee(count + 1, k=50, gamma=4.0, epsilon0=1.0)
        assert within.epsilon <= budget
        assert beyond.epsilon > budget

    def test_zero_when_even_one_record_is_too_expensive(self):
        assert max_releasable_records(0.01, k=50, gamma=4.0, epsilon0=1.0) == 0

    def test_upper_bound_respected(self):
        count = max_releasable_records(
            1e9, k=50, gamma=4.0, epsilon0=1.0, upper_bound=500
        )
        assert count == 500

    def test_validation(self):
        with pytest.raises(ValueError):
            max_releasable_records(0.0, k=50, gamma=4.0, epsilon0=1.0)
        with pytest.raises(ValueError):
            max_releasable_records(1.0, k=50, gamma=4.0, epsilon0=1.0, upper_bound=0)

    def test_larger_budget_allows_more_records(self):
        small = max_releasable_records(10.0, k=50, gamma=4.0, epsilon0=1.0)
        large = max_releasable_records(100.0, k=50, gamma=4.0, epsilon0=1.0)
        assert large > small
