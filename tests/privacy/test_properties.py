"""Property-based tests (hypothesis) for the privacy primitives.

The example-based suites pin specific values; these properties assert the
algebraic contracts on randomly drawn inputs: Laplace noise scales linearly
with sensitivity (and inversely with ε), composition never under-reports
spend, the plausible-deniability criterion is monotone in k, and the
partition-number algebra respects its bucket boundaries.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.privacy.accountant import PrivacyAccountant
from repro.privacy.composition import (
    advanced_composition,
    amplification_by_sampling,
    sequential_composition,
)
from repro.privacy.laplace import laplace_mechanism, laplace_noise
from repro.privacy.plausible_deniability import (
    partition_number,
    partition_numbers,
    plausible_seed_count,
    satisfies_plausible_deniability,
    theorem1_delta,
    theorem1_epsilon,
)

_SETTINGS = settings(max_examples=50, deadline=None)

positive_floats = st.floats(
    min_value=1e-3, max_value=1e3, allow_nan=False, allow_infinity=False
)
probabilities = st.floats(min_value=1e-12, max_value=1.0, exclude_max=False)
gammas = st.floats(min_value=1.01, max_value=16.0)


class TestLaplaceScaling:
    @_SETTINGS
    @given(
        seed=st.integers(0, 2**31 - 1),
        value=st.floats(-100, 100),
        sensitivity=positive_floats,
        scale_factor=st.floats(min_value=0.1, max_value=10.0),
        epsilon=positive_floats,
    )
    def test_noise_scales_linearly_with_sensitivity(
        self, seed, value, sensitivity, scale_factor, epsilon
    ):
        base = laplace_mechanism(value, sensitivity, epsilon, np.random.default_rng(seed))
        scaled = laplace_mechanism(
            value, sensitivity * scale_factor, epsilon, np.random.default_rng(seed)
        )
        assert scaled - value == pytest.approx(
            (base - value) * scale_factor, rel=1e-9, abs=1e-12
        )

    @_SETTINGS
    @given(
        seed=st.integers(0, 2**31 - 1),
        sensitivity=positive_floats,
        epsilon=positive_floats,
        tighten=st.floats(min_value=1.0, max_value=10.0),
    )
    def test_noise_shrinks_inversely_with_epsilon(self, seed, sensitivity, epsilon, tighten):
        loose = laplace_mechanism(0.0, sensitivity, epsilon, np.random.default_rng(seed))
        tight = laplace_mechanism(
            0.0, sensitivity, epsilon * tighten, np.random.default_rng(seed)
        )
        assert tight == pytest.approx(loose / tighten, rel=1e-9, abs=1e-12)

    @_SETTINGS
    @given(seed=st.integers(0, 2**31 - 1), scale=positive_floats, size=st.integers(1, 64))
    def test_vector_noise_is_scale_times_standard_draw(self, seed, scale, size):
        standard = laplace_noise(1.0, np.random.default_rng(seed), size=size)
        scaled = laplace_noise(scale, np.random.default_rng(seed), size=size)
        np.testing.assert_allclose(scaled, standard * scale, rtol=1e-9)

    def test_zero_sensitivity_is_noise_free(self):
        rng = np.random.default_rng(0)
        assert laplace_mechanism(3.5, 0.0, 1.0, rng) == 3.5


class TestCompositionNeverUnderReports:
    guarantee = st.tuples(
        st.floats(min_value=0.0, max_value=5.0),
        st.floats(min_value=0.0, max_value=1e-3),
    )

    @_SETTINGS
    @given(guarantees=st.lists(guarantee, min_size=1, max_size=10))
    def test_sequential_dominates_every_component(self, guarantees):
        epsilon, delta = sequential_composition(guarantees)
        assert epsilon == pytest.approx(sum(e for e, _ in guarantees), rel=1e-12)
        assert epsilon >= max(e for e, _ in guarantees) - 1e-15
        assert delta >= max(d for _, d in guarantees) - 1e-15

    @_SETTINGS
    @given(
        epsilon=st.floats(min_value=1e-4, max_value=2.0),
        delta=st.floats(min_value=0.0, max_value=1e-4),
        num_queries=st.integers(1, 200),
        slack=st.floats(min_value=1e-12, max_value=0.5),
    )
    def test_advanced_never_cheaper_than_one_query(self, epsilon, delta, num_queries, slack):
        composed_epsilon, composed_delta = advanced_composition(
            epsilon, delta, num_queries, slack
        )
        assert composed_epsilon >= epsilon * (1 - 1e-12)
        assert composed_delta >= min(1.0, num_queries * delta) - 1e-15

    @_SETTINGS
    @given(
        epsilon=st.floats(min_value=1e-4, max_value=5.0),
        delta=st.floats(min_value=0.0, max_value=1e-3),
        probability=st.floats(min_value=1e-6, max_value=1.0),
    )
    def test_amplification_never_amplifies_upward(self, epsilon, delta, probability):
        amplified_epsilon, amplified_delta = amplification_by_sampling(
            epsilon, delta, probability
        )
        assert amplified_epsilon <= epsilon * (1 + 1e-12)
        assert amplified_delta <= delta * (1 + 1e-12)

    @_SETTINGS
    @given(
        spends=st.lists(
            st.tuples(
                st.sampled_from(["a", "b", "c"]),
                st.floats(min_value=1e-4, max_value=1.0),
                st.integers(1, 50),
                st.sampled_from(["left", "right"]),
            ),
            min_size=1,
            max_size=8,
        )
    )
    def test_accountant_total_conserves_recorded_spend(self, spends):
        accountant = PrivacyAccountant()
        for label, epsilon, count, scope in spends:
            accountant.spend(label, epsilon, count=count, scope=scope)
        sequential_total = accountant.total_guarantee(use_advanced=False)
        exact = sum(epsilon * count for _, epsilon, count, _ in spends)
        assert sequential_total[0] == pytest.approx(exact, rel=1e-9)
        disjoint_total = accountant.total_guarantee(
            use_advanced=False, disjoint_scopes=True
        )
        assert disjoint_total[0] <= sequential_total[0] * (1 + 1e-12)
        advanced_total = accountant.total_guarantee(use_advanced=True)
        assert advanced_total[0] <= sequential_total[0] * (1 + 1e-12)
        assert advanced_total[0] >= max(e for _, e, _, _ in spends) * (1 - 1e-12)


class TestPlausibleDeniabilityMonotonicity:
    @_SETTINGS
    @given(
        data=st.data(),
        gamma=gammas,
        num_records=st.integers(2, 80),
        k=st.integers(1, 40),
    )
    def test_count_criterion_is_monotone_in_k(self, data, gamma, num_records, k):
        seed_probability = data.draw(probabilities, label="seed probability")
        others = data.draw(
            st.lists(
                st.one_of(st.just(0.0), probabilities),
                min_size=num_records - 1,
                max_size=num_records - 1,
            ),
            label="dataset probabilities",
        )
        dataset = np.array([seed_probability] + others)
        if satisfies_plausible_deniability(seed_probability, dataset, k + 1, gamma):
            assert satisfies_plausible_deniability(seed_probability, dataset, k, gamma)

    @_SETTINGS
    @given(data=st.data(), gamma=gammas, num_records=st.integers(1, 80))
    def test_full_scan_count_includes_the_seed_and_is_bounded(
        self, data, gamma, num_records
    ):
        seed_probability = data.draw(probabilities, label="seed probability")
        others = data.draw(
            st.lists(
                st.one_of(st.just(0.0), probabilities),
                min_size=num_records - 1,
                max_size=num_records - 1,
            ),
            label="dataset probabilities",
        )
        dataset = np.array([seed_probability] + others)
        count, partition, checked, _ = plausible_seed_count(
            seed_probability, dataset, gamma
        )
        assert 1 <= count <= num_records
        assert checked == num_records
        assert partition == partition_number(seed_probability, gamma)


class TestPartitionAlgebra:
    @_SETTINGS
    @given(probability=probabilities, gamma=gammas)
    def test_bucket_contains_its_probability(self, probability, gamma):
        index = partition_number(probability, gamma)
        assert index >= 0
        # γ^-(i+1) < p <= γ^-i, up to the documented boundary tolerance.
        assert probability <= gamma ** (-index) * (1 + 1e-9)
        assert probability > gamma ** (-(index + 1)) * (1 - 1e-9)

    @_SETTINGS
    @given(
        probs=st.lists(st.one_of(st.just(0.0), probabilities), min_size=1, max_size=50),
        gamma=gammas,
    )
    def test_vectorized_matches_scalar(self, probs, gamma):
        array = np.array(probs)
        vectorized = partition_numbers(array, gamma)
        scalar = [partition_number(p, gamma) for p in probs]
        assert vectorized.tolist() == scalar


class TestTheorem1Algebra:
    @_SETTINGS
    @given(
        # epsilon0 * (k - 1) stays well below ~745 so exp(-epsilon0 (k - t))
        # never underflows to 0.0 — underflow makes strict monotonicity (and
        # 0 < delta) mathematically true but float-false.
        epsilon0=st.floats(min_value=1e-2, max_value=2.0),
        gamma=gammas,
        k=st.integers(2, 200),
    )
    def test_epsilon_decreases_and_delta_increases_in_t(self, epsilon0, gamma, k):
        epsilons = [theorem1_epsilon(epsilon0, gamma, t) for t in range(1, k)]
        deltas = [theorem1_delta(epsilon0, k, t) for t in range(1, k)]
        assert all(a > b for a, b in zip(epsilons, epsilons[1:]))
        assert all(a < b for a, b in zip(deltas, deltas[1:]))
        assert all(epsilon > epsilon0 for epsilon in epsilons)
        assert all(0.0 < delta < 1.0 for delta in deltas)

    @_SETTINGS
    @given(
        epsilon0=st.floats(min_value=1e-2, max_value=4.0),
        k=st.integers(2, 500),
        t=st.integers(1, 100),
    )
    def test_delta_matches_closed_form(self, epsilon0, k, t):
        if not t < k:
            return
        assert theorem1_delta(epsilon0, k, t) == pytest.approx(
            math.exp(-epsilon0 * (k - t)), rel=1e-12
        )
