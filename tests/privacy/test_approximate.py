"""Tests for bounded-latency approximate plausible-deniability testing.

Covers the stratified sampler, the deterministic count bounds that make
early decisions exact, the scheduling confidence interval, and the batch
driver's decision semantics — plus the partition boundary grid the whole
bucket algebra rests on.
"""

import numpy as np
import pytest

from repro.privacy.approximate import (
    ApproximateTestConfig,
    _normal_quantile,
    approximate_plausible_counts,
    count_confidence_interval,
    deterministic_count_bounds,
    stratified_sample_indices,
)
from repro.privacy.plausible_deniability import partition_number, partition_numbers


class TestConfigValidation:
    def test_defaults_are_valid(self):
        ApproximateTestConfig()

    @pytest.mark.parametrize(
        "field, value",
        [
            ("initial_sample", 0),
            ("growth_factor", 1),
            ("max_rounds", 0),
            ("sample_fraction_limit", 0.0),
            ("sample_fraction_limit", 1.5),
            ("confidence", 0.5),
            ("confidence", 1.0),
            ("strata", 0),
            ("min_records", 0),
        ],
    )
    def test_invalid_values_rejected(self, field, value):
        with pytest.raises(ValueError):
            ApproximateTestConfig(**{field: value})


class TestStratifiedSampler:
    def test_requires_a_caller_supplied_rng(self):
        with pytest.raises(ValueError, match="rng"):
            stratified_sample_indices(100, 10, None)

    def test_is_a_pure_function_of_the_rng(self):
        first = stratified_sample_indices(1000, 100, np.random.default_rng(3))
        second = stratified_sample_indices(1000, 100, np.random.default_rng(3))
        other = stratified_sample_indices(1000, 100, np.random.default_rng(4))
        assert np.array_equal(first, second)
        assert not np.array_equal(first, other)

    def test_without_replacement_and_sorted(self):
        sample = stratified_sample_indices(500, 200, np.random.default_rng(0))
        assert np.array_equal(sample, np.unique(sample))
        assert sample.min() >= 0 and sample.max() < 500

    def test_every_stratum_contributes(self):
        strata = 8
        sample = stratified_sample_indices(
            800, 160, np.random.default_rng(1), strata=strata
        )
        block = 800 // strata
        per_stratum = np.bincount(sample // block, minlength=strata)
        assert np.all(per_stratum > 0)
        # Proportional draw: every block contributes its fair share exactly.
        assert np.all(per_stratum == 160 // strata)

    def test_full_population_request_returns_everything(self):
        sample = stratified_sample_indices(50, 50, np.random.default_rng(0))
        assert np.array_equal(sample, np.arange(50))
        oversized = stratified_sample_indices(50, 99, np.random.default_rng(0))
        assert np.array_equal(oversized, np.arange(50))

    def test_invalid_sizes_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError, match="num_records"):
            stratified_sample_indices(0, 1, rng)
        with pytest.raises(ValueError, match="sample_size"):
            stratified_sample_indices(10, 0, rng)


class TestDeterministicBounds:
    def test_true_count_always_within_bounds(self):
        rng = np.random.default_rng(7)
        num_records = 300
        for _ in range(25):
            membership = rng.random(num_records) < rng.uniform(0.02, 0.5)
            seed_row = int(rng.integers(num_records))
            membership[seed_row] = True  # the seed is in its own bucket
            true_count = int(membership.sum())
            sample = rng.choice(num_records, size=80, replace=False)
            sample_count = int(membership[sample].sum())
            seed_sampled = seed_row in sample
            lower, upper = deterministic_count_bounds(
                np.array([sample_count]), np.array([seed_sampled]), num_records, 80
            )
            assert lower[0] <= true_count <= upper[0]

    def test_full_scan_collapses_the_interval(self):
        lower, upper = deterministic_count_bounds(
            np.array([42]), np.array([True]), 100, 100
        )
        assert lower[0] == upper[0] == 42

    def test_unsampled_seed_is_a_certain_match(self):
        lower, _ = deterministic_count_bounds(
            np.array([0]), np.array([False]), 100, 10
        )
        assert lower[0] == 1


class TestConfidenceInterval:
    def test_quantile_matches_known_values(self):
        assert _normal_quantile(0.975) == pytest.approx(1.959964, abs=1e-5)
        assert _normal_quantile(0.5) == pytest.approx(0.0, abs=1e-12)
        assert _normal_quantile(0.025) == pytest.approx(-_normal_quantile(0.975))
        with pytest.raises(ValueError):
            _normal_quantile(0.0)

    def test_interval_contains_the_scaled_estimate(self):
        low, high = count_confidence_interval(np.array([20]), 100, 10_000)
        assert low[0] <= 20 / 100 * 10_000 <= high[0]
        assert low[0] >= 0 and high[0] <= 10_000

    def test_zero_match_sample_still_has_width(self):
        # The 1/m variance floor keeps a zero-count sample from claiming
        # certainty it does not have.
        low, high = count_confidence_interval(np.array([0]), 50, 5_000)
        assert high[0] > low[0]

    def test_exhaustive_sample_is_exact(self):
        low, high = count_confidence_interval(np.array([7]), 100, 100)
        assert low[0] == high[0] == 7.0

    def test_rejects_empty_sample(self):
        with pytest.raises(ValueError, match="sample_size"):
            count_confidence_interval(np.array([0]), 0, 100)


def _driver_setup(membership: np.ndarray, seed_rows: np.ndarray, gamma: float = 4.0):
    """probability_fn / exact_fn over a planted bucket-membership matrix.

    ``membership[c, r]`` says record r is in candidate c's bucket; members get
    probability γ^-1 (bucket 1) and non-members γ^-3 (bucket 3), so partitions
    are unambiguous and the seed partition is the members' bucket.
    """
    num_candidates, num_records = membership.shape
    probabilities = np.where(membership, gamma**-1.0, gamma**-3.0)

    def probability_fn(record_indices, candidate_indices):
        return probabilities[np.ix_(candidate_indices, record_indices)]

    def exact_fn(candidate_indices):
        counts = membership[candidate_indices].sum(axis=1)
        checked = np.full(candidate_indices.size, num_records, dtype=np.int64)
        return counts, checked

    seed_partitions = np.full(num_candidates, 1, dtype=np.int64)
    assert np.all(membership[np.arange(num_candidates), seed_rows])
    return probability_fn, exact_fn, seed_partitions


class TestApproximateDriver:
    def _run(self, membership, seed_rows, thresholds, config, rng_seed=0):
        probability_fn, exact_fn, seed_partitions = _driver_setup(
            membership, seed_rows
        )
        return approximate_plausible_counts(
            seed_partitions=seed_partitions,
            seed_record_indices=seed_rows,
            thresholds=np.asarray(thresholds, dtype=np.float64),
            probability_fn=probability_fn,
            exact_fn=exact_fn,
            num_records=membership.shape[1],
            gamma=4.0,
            config=config,
            rng=np.random.default_rng(rng_seed),
        )

    @staticmethod
    def _planted(num_candidates, num_records, fractions, rng):
        membership = np.zeros((num_candidates, num_records), dtype=bool)
        for index, fraction in enumerate(fractions):
            size = max(1, int(fraction * num_records))
            rows = rng.choice(num_records, size=size, replace=False)
            membership[index, rows] = True
        seed_rows = np.array(
            [int(np.flatnonzero(row)[0]) for row in membership], dtype=np.int64
        )
        return membership, seed_rows

    def test_decisions_match_exact_for_every_candidate(self):
        rng = np.random.default_rng(11)
        membership, seed_rows = self._planted(
            24, 4000, np.linspace(0.01, 0.6, 24), rng
        )
        thresholds = np.full(24, 0.05 * 4000)
        config = ApproximateTestConfig(
            initial_sample=128, min_records=1, strata=8, sample_fraction_limit=0.5
        )
        report = self._run(membership, seed_rows, thresholds, config)
        exact_counts = membership.sum(axis=1)
        approx_decision = report.counts >= thresholds
        exact_decision = exact_counts >= thresholds
        assert np.array_equal(approx_decision, exact_decision)
        # Early-decided counts are certain lower bounds, escalated ones exact.
        assert np.all(report.counts[report.escalated] == exact_counts[report.escalated])
        assert np.all(report.counts <= exact_counts)

    def test_rich_buckets_decide_early_without_full_scan(self):
        rng = np.random.default_rng(5)
        membership, seed_rows = self._planted(8, 8000, [0.7] * 8, rng)
        thresholds = np.full(8, 100.0)
        config = ApproximateTestConfig(initial_sample=512, min_records=1)
        report = self._run(membership, seed_rows, thresholds, config)
        assert not report.escalated.any()
        assert np.all(report.records_checked < 8000)
        assert np.all(report.counts >= 100)

    def test_empty_buckets_fail_early_when_bound_clears(self):
        # One member (the seed); the threshold exceeds even the most
        # optimistic upper bound once the sample covers enough records.
        membership = np.zeros((4, 1000), dtype=bool)
        membership[np.arange(4), np.arange(4)] = True
        seed_rows = np.arange(4, dtype=np.int64)
        thresholds = np.full(4, 990.0)
        config = ApproximateTestConfig(
            initial_sample=64, min_records=1, sample_fraction_limit=1.0, max_rounds=1
        )
        report = self._run(membership, seed_rows, thresholds, config)
        assert not report.escalated.any()
        assert np.all(report.counts < thresholds)

    def test_near_threshold_candidates_escalate_to_exact(self):
        rng = np.random.default_rng(9)
        num_records = 4000
        membership, seed_rows = self._planted(6, num_records, [0.1] * 6, rng)
        exact_counts = membership.sum(axis=1)
        thresholds = exact_counts.astype(np.float64)  # razor-thin margin
        config = ApproximateTestConfig(
            initial_sample=64, min_records=1, max_rounds=2
        )
        report = self._run(membership, seed_rows, thresholds, config)
        assert report.escalated.all()
        assert np.all(report.records_checked == num_records)
        assert np.array_equal(report.counts, exact_counts)

    def test_requires_a_caller_supplied_rng(self):
        with pytest.raises(ValueError, match="rng"):
            approximate_plausible_counts(
                seed_partitions=np.array([0]),
                seed_record_indices=np.array([0]),
                thresholds=np.array([1.0]),
                probability_fn=lambda r, c: np.zeros((1, 1)),
                exact_fn=lambda c: (np.zeros(1), np.zeros(1)),
                num_records=10,
                gamma=4.0,
                config=ApproximateTestConfig(),
                rng=None,
            )


class TestPartitionBoundaryGrid:
    """Satellite property test: γ^-i lands exactly in bucket i on the edge.

    Definition 1 buckets are γ^-(i+1) < Pr <= γ^-i, so a probability exactly
    on the grid must snap *up* into bucket i, at every representable depth.
    The scalar path must agree with the vectorized path everywhere — it
    delegates, and this pins that contract.
    """

    GAMMAS = (1.5, 2.0, 3.0, 4.0, 10.0)

    @staticmethod
    def _grid(gamma: float, floor: float) -> tuple[np.ndarray, np.ndarray]:
        indices, probabilities = [], []
        i = 0
        while True:
            p = gamma ** -float(i)
            if p < floor or p == 0.0:
                break
            indices.append(i)
            probabilities.append(p)
            i += 1
        return np.array(indices), np.array(probabilities, dtype=np.float64)

    @pytest.mark.parametrize("gamma", GAMMAS)
    def test_edges_snap_up_through_the_normal_range(self, gamma):
        # Down to the smallest *normal* float64; in the subnormal tail the
        # float grid γ^-i itself loses precision for non-dyadic γ, so no
        # exactness claim is possible there.
        indices, probabilities = self._grid(gamma, np.finfo(np.float64).tiny)
        assert indices.size > 300  # the grid really spans the float range
        assert np.array_equal(partition_numbers(probabilities, gamma), indices)

    @pytest.mark.parametrize("gamma", GAMMAS)
    def test_scalar_equals_vectorized_everywhere(self, gamma):
        # Including the subnormal tail: whatever the vectorized path says,
        # the scalar path must say bit-identically, since it delegates.
        indices, probabilities = self._grid(gamma, 0.0)
        vectorized = partition_numbers(probabilities, gamma)
        scalar = np.array([partition_number(float(p), gamma) for p in probabilities])
        assert np.array_equal(scalar, vectorized)

    @pytest.mark.parametrize("gamma", GAMMAS)
    def test_bucket_interiors_classify_unambiguously(self, gamma):
        # The geometric midpoint of (γ^-(i+1), γ^-i] is far from both edges,
        # so no tolerance is involved: it must land in bucket i exactly.
        for i in (0, 1, 5, 50, 300):
            midpoint = gamma ** -(i + 0.5)
            assert partition_number(midpoint, gamma) == i
