"""Tests for the Laplace mechanism primitives."""

import numpy as np
import pytest

from repro.privacy.laplace import laplace_mechanism, laplace_noise, laplace_tail_probability


class TestLaplaceNoise:
    def test_scalar_and_array_shapes(self, rng):
        assert isinstance(laplace_noise(1.0, rng), float)
        assert laplace_noise(1.0, rng, size=5).shape == (5,)
        assert laplace_noise(1.0, rng, size=(2, 3)).shape == (2, 3)

    def test_rejects_non_positive_scale(self, rng):
        with pytest.raises(ValueError):
            laplace_noise(0.0, rng)

    def test_empirical_mean_and_scale(self):
        rng = np.random.default_rng(0)
        samples = laplace_noise(2.0, rng, size=200_000)
        assert np.mean(samples) == pytest.approx(0.0, abs=0.05)
        # For Lap(b), E|X| = b.
        assert np.mean(np.abs(samples)) == pytest.approx(2.0, rel=0.05)


class TestLaplaceMechanism:
    def test_scalar_output(self, rng):
        value = laplace_mechanism(10.0, sensitivity=1.0, epsilon=1.0, rng=rng)
        assert isinstance(value, float)

    def test_array_output_shape(self, rng):
        noisy = laplace_mechanism(np.zeros(4), sensitivity=1.0, epsilon=0.5, rng=rng)
        assert noisy.shape == (4,)

    def test_zero_sensitivity_returns_exact_value(self, rng):
        assert laplace_mechanism(3.5, sensitivity=0.0, epsilon=1.0, rng=rng) == 3.5

    def test_rejects_invalid_parameters(self, rng):
        with pytest.raises(ValueError):
            laplace_mechanism(1.0, sensitivity=-1.0, epsilon=1.0, rng=rng)
        with pytest.raises(ValueError):
            laplace_mechanism(1.0, sensitivity=1.0, epsilon=0.0, rng=rng)

    def test_noise_scale_tracks_sensitivity_over_epsilon(self):
        rng = np.random.default_rng(1)
        noisy = laplace_mechanism(np.zeros(100_000), sensitivity=2.0, epsilon=0.5, rng=rng)
        assert np.mean(np.abs(noisy)) == pytest.approx(4.0, rel=0.05)


class TestTailProbability:
    def test_at_zero_is_half(self):
        assert laplace_tail_probability(0.0, 1.0) == pytest.approx(0.5)

    def test_symmetric_tails(self):
        assert laplace_tail_probability(2.0, 1.0) + laplace_tail_probability(-2.0, 1.0) == (
            pytest.approx(1.0)
        )

    def test_monotone_decreasing_in_threshold(self):
        values = [laplace_tail_probability(x, 1.0) for x in (-3, -1, 0, 1, 3)]
        assert values == sorted(values, reverse=True)

    def test_matches_empirical_frequency(self):
        rng = np.random.default_rng(2)
        samples = rng.laplace(0.0, 2.0, size=200_000)
        empirical = np.mean(samples >= 3.0)
        assert laplace_tail_probability(3.0, 2.0) == pytest.approx(empirical, abs=0.01)

    def test_rejects_bad_scale(self):
        with pytest.raises(ValueError):
            laplace_tail_probability(1.0, 0.0)
