"""Tests for the Theorem 1 parameter algebra and an empirical DP check.

The empirical check is the most valuable test in this file: it builds a tiny
seed-dependent generative model, runs Mechanism 1 with the randomized privacy
test on two neighbouring datasets, and verifies that the observed output
probabilities respect the (ε, δ) bound Theorem 1 promises.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.privacy.plausible_deniability import (
    PlausibleDeniabilityParams,
    RandomizedPrivacyTest,
    minimum_k_for_delta,
    theorem1_delta,
    theorem1_epsilon,
    theorem1_guarantee,
)


class TestFormulas:
    def test_epsilon_formula(self):
        assert theorem1_epsilon(1.0, 4.0, t=4) == pytest.approx(1.0 + math.log(2.0))

    def test_delta_formula(self):
        assert theorem1_delta(1.0, k=50, t=10) == pytest.approx(math.exp(-40.0))

    def test_epsilon_decreases_with_t(self):
        values = [theorem1_epsilon(1.0, 4.0, t) for t in (1, 2, 5, 10, 40)]
        assert values == sorted(values, reverse=True)

    def test_delta_increases_with_t(self):
        values = [theorem1_delta(1.0, 50, t) for t in (1, 10, 25, 49)]
        assert values == sorted(values)

    def test_validation(self):
        with pytest.raises(ValueError):
            theorem1_epsilon(0.0, 4.0, 1)
        with pytest.raises(ValueError):
            theorem1_epsilon(1.0, 1.0, 1)
        with pytest.raises(ValueError):
            theorem1_epsilon(1.0, 4.0, 0)
        with pytest.raises(ValueError):
            theorem1_delta(1.0, 10, 10)  # t must be < k
        with pytest.raises(ValueError):
            theorem1_delta(1.0, 10, 0)

    def test_guarantee_chooses_admissible_t(self):
        epsilon, delta, t = theorem1_guarantee(k=50, gamma=4.0, epsilon0=1.0)
        assert 1 <= t < 50
        assert epsilon == pytest.approx(theorem1_epsilon(1.0, 4.0, t))
        assert delta == pytest.approx(theorem1_delta(1.0, 50, t))
        assert delta <= 1.0 / 50**2

    def test_guarantee_with_fixed_t(self):
        epsilon, delta, t = theorem1_guarantee(k=50, gamma=4.0, epsilon0=1.0, t=5)
        assert t == 5
        assert epsilon == pytest.approx(theorem1_epsilon(1.0, 4.0, 5))

    def test_guarantee_requires_k_at_least_two(self):
        with pytest.raises(ValueError):
            theorem1_guarantee(k=1, gamma=4.0, epsilon0=1.0)

    def test_minimum_k_for_delta(self):
        k = minimum_k_for_delta(1e-9, epsilon0=1.0, t=10)
        assert theorem1_delta(1.0, k, 10) <= 1e-9
        assert theorem1_delta(1.0, k - 1, 10) > 1e-9

    def test_minimum_k_validation(self):
        with pytest.raises(ValueError):
            minimum_k_for_delta(0.0, 1.0, 1)
        with pytest.raises(ValueError):
            minimum_k_for_delta(1e-3, 0.0, 1)
        with pytest.raises(ValueError):
            minimum_k_for_delta(1e-3, 1.0, 0)

    @given(
        st.integers(min_value=2, max_value=300),
        st.floats(min_value=1.1, max_value=16.0),
        st.floats(min_value=0.05, max_value=3.0),
    )
    @settings(max_examples=60)
    def test_guarantee_always_valid(self, k, gamma, epsilon0):
        epsilon, delta, t = theorem1_guarantee(k, gamma, epsilon0)
        assert epsilon > 0
        assert 0 < delta < 1
        assert 1 <= t < k


class _IndicatorModel:
    """A minimal seed-dependent model over a tiny discrete universe.

    Each record is an integer in {0..3}; the model outputs the seed itself
    with probability 0.7 and a uniformly random other value with probability
    0.3, so Pr{y = M(d)} is 0.7 when y == d and 0.1 otherwise.
    """

    def probability(self, seed: int, candidate: int) -> float:
        return 0.7 if seed == candidate else 0.1

    def generate(self, seed: int, rng: np.random.Generator) -> int:
        if rng.random() < 0.7:
            return seed
        others = [value for value in range(4) if value != seed]
        return int(rng.choice(others))


def _release_probability(dataset, candidate, params, num_trials, seed):
    """Monte-Carlo estimate of Pr{F(D) = candidate} for the indicator model."""
    model = _IndicatorModel()
    test = RandomizedPrivacyTest(params)
    rng = np.random.default_rng(seed)
    releases = 0
    dataset = np.asarray(dataset)
    for _ in range(num_trials):
        seed_record = int(dataset[rng.integers(len(dataset))])
        generated = model.generate(seed_record, rng)
        if generated != candidate:
            continue
        probabilities = np.array([model.probability(int(d), candidate) for d in dataset])
        if test(model.probability(seed_record, candidate), probabilities, rng).passed:
            releases += 1
    return releases / num_trials


class TestEmpiricalDifferentialPrivacy:
    @pytest.mark.parametrize("candidate", [0, 1])
    def test_neighbouring_datasets_respect_theorem1_bound(self, candidate):
        # D has 12 copies of each value; D' additionally contains one extra 0.
        base = np.repeat(np.arange(4), 12)
        neighbour = np.concatenate([base, [0]])
        params = PlausibleDeniabilityParams(k=6, gamma=3.0, epsilon0=0.5)
        epsilon, delta, _ = theorem1_guarantee(params.k, params.gamma, params.epsilon0)

        num_trials = 40_000
        p_base = _release_probability(base, candidate, params, num_trials, seed=0)
        p_neighbour = _release_probability(neighbour, candidate, params, num_trials, seed=1)

        # Allow for Monte-Carlo error: three standard deviations on each side.
        margin = 3 * math.sqrt(max(p_base, p_neighbour) / num_trials) + 1e-4
        assert p_neighbour <= math.exp(epsilon) * p_base + delta + margin
        assert p_base <= math.exp(epsilon) * p_neighbour + delta + margin
