"""Tests for the privacy-budget accountant."""

import pytest

from repro.privacy.accountant import BudgetEntry, PrivacyAccountant


class TestBudgetEntry:
    def test_validation(self):
        with pytest.raises(ValueError):
            BudgetEntry("x", epsilon=-1.0, delta=0.0)
        with pytest.raises(ValueError):
            BudgetEntry("x", epsilon=0.1, delta=2.0)
        with pytest.raises(ValueError):
            BudgetEntry("x", epsilon=0.1, delta=0.0, count=0)

    def test_defaults(self):
        entry = BudgetEntry("x", 0.1, 0.0)
        assert entry.count == 1
        assert entry.scope == "default"


class TestAccountant:
    def test_empty_accountant_raises(self):
        with pytest.raises(ValueError):
            PrivacyAccountant().total_guarantee()

    def test_single_entry_total(self):
        accountant = PrivacyAccountant()
        accountant.spend("query", 0.5)
        assert accountant.total_guarantee() == (0.5, 0.0)

    def test_sequential_total_across_labels(self):
        accountant = PrivacyAccountant()
        accountant.spend("a", 0.3)
        accountant.spend("b", 0.2)
        epsilon, _ = accountant.total_guarantee()
        assert epsilon == pytest.approx(0.5)

    def test_phase_guarantee_by_label(self):
        accountant = PrivacyAccountant()
        accountant.spend("a", 0.3)
        accountant.spend("a", 0.1)
        accountant.spend("b", 0.2)
        assert accountant.phase_guarantee("a")[0] == pytest.approx(0.4)

    def test_unknown_label_raises(self):
        accountant = PrivacyAccountant()
        accountant.spend("a", 0.1)
        with pytest.raises(KeyError):
            accountant.phase_guarantee("missing")
        with pytest.raises(KeyError):
            accountant.scope_guarantee("missing")

    def test_advanced_composition_used_when_tighter(self):
        accountant = PrivacyAccountant(delta_slack=1e-9)
        accountant.spend("entropy", 0.01, count=2000)
        epsilon, delta = accountant.phase_guarantee("entropy")
        assert epsilon < 0.01 * 2000
        assert delta == pytest.approx(1e-9)

    def test_sequential_used_when_tighter_for_few_queries(self):
        accountant = PrivacyAccountant(delta_slack=1e-9)
        accountant.spend("counts", 0.05, count=5)
        epsilon, delta = accountant.phase_guarantee("counts")
        assert epsilon == pytest.approx(0.25)
        assert delta == 0.0

    def test_disjoint_scopes_take_maximum(self):
        accountant = PrivacyAccountant()
        accountant.spend("structure", 0.6, scope="structure-data")
        accountant.spend("parameters", 0.9, scope="parameter-data")
        epsilon, _ = accountant.total_guarantee(disjoint_scopes=True)
        assert epsilon == pytest.approx(0.9)

    def test_same_scope_composes_sequentially_even_with_disjoint_flag(self):
        accountant = PrivacyAccountant()
        accountant.spend("entropy", 0.4, scope="structure-data")
        accountant.spend("count", 0.1, scope="structure-data")
        epsilon, _ = accountant.total_guarantee(disjoint_scopes=True)
        assert epsilon == pytest.approx(0.5)

    def test_sampling_amplification_applied_last(self):
        accountant = PrivacyAccountant()
        accountant.spend("a", 1.0)
        amplified, _ = accountant.total_guarantee(sampling_probability=0.1)
        plain, _ = accountant.total_guarantee()
        assert amplified < plain

    def test_labels_and_scopes_in_order(self):
        accountant = PrivacyAccountant()
        accountant.spend("b", 0.1, scope="s2")
        accountant.spend("a", 0.1, scope="s1")
        accountant.spend("b", 0.1, scope="s2")
        assert accountant.labels() == ["b", "a"]
        assert accountant.scopes() == ["s2", "s1"]


class TestThreadSafety:
    """Concurrent spend must never drop entries or under-report composition."""

    def test_concurrent_spend_never_under_reports(self):
        import threading

        accountant = PrivacyAccountant()
        num_threads, per_thread = 8, 200
        barrier = threading.Barrier(num_threads)
        guarantees = []

        def worker(index: int) -> None:
            barrier.wait()
            for i in range(per_thread):
                accountant.spend(f"t{index}", 0.01, delta=1e-9, scope=f"scope{index % 2}")
                if i % 50 == 0:
                    # Guarantee reads interleaved with appends must not crash
                    # or observe a torn ledger.
                    guarantees.append(accountant.total_guarantee(use_advanced=False))

        threads = [
            threading.Thread(target=worker, args=(index,))
            for index in range(num_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        total = num_threads * per_thread
        assert len(accountant.entries) == total
        # Exact sequential composition over everything that was recorded:
        # nothing dropped, nothing double-counted.
        epsilon, delta = accountant.total_guarantee(use_advanced=False)
        assert epsilon == pytest.approx(total * 0.01)
        assert delta == pytest.approx(total * 1e-9)
        # Interleaved reads saw monotonically consistent (never-too-small,
        # never-above-final) totals.
        assert all(0 < eps <= epsilon * (1 + 1e-12) for eps, _ in guarantees)
        from repro.testing.invariants import check_accountant_conservation

        check_accountant_conservation(accountant)

    def test_lock_survives_pickle_and_deepcopy(self):
        import copy
        import pickle

        accountant = PrivacyAccountant()
        accountant.spend("a", 0.5)
        clone = pickle.loads(pickle.dumps(accountant))
        clone.spend("b", 0.5)  # the recreated lock works
        assert len(clone.entries) == 2
        assert len(accountant.entries) == 1

        deep = copy.deepcopy(accountant)
        deep.spend("c", 0.1)
        assert len(deep.entries) == 2
        assert accountant.entries == pickle.loads(pickle.dumps(accountant)).entries
