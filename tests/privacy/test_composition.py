"""Tests for the DP composition theorems (Appendix A)."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.privacy.composition import (
    advanced_composition,
    amplification_by_sampling,
    sequential_composition,
)


class TestSequentialComposition:
    def test_sums_epsilons_and_deltas(self):
        epsilon, delta = sequential_composition([(0.5, 1e-6), (0.25, 1e-6), (0.25, 0.0)])
        assert epsilon == pytest.approx(1.0)
        assert delta == pytest.approx(2e-6)

    def test_single_guarantee_is_unchanged(self):
        assert sequential_composition([(0.3, 0.0)]) == (0.3, 0.0)

    def test_delta_capped_at_one(self):
        _, delta = sequential_composition([(0.1, 0.7), (0.1, 0.7)])
        assert delta == 1.0

    def test_requires_at_least_one_guarantee(self):
        with pytest.raises(ValueError):
            sequential_composition([])

    def test_rejects_negative_epsilon(self):
        with pytest.raises(ValueError):
            sequential_composition([(-0.1, 0.0)])

    def test_rejects_delta_out_of_range(self):
        with pytest.raises(ValueError):
            sequential_composition([(0.1, 1.5)])


class TestAdvancedComposition:
    def test_matches_theorem3_formula(self):
        epsilon, delta = advanced_composition(0.1, 0.0, num_queries=100, delta_slack=1e-6)
        expected = 0.1 * math.sqrt(2 * 100 * math.log(1e6)) + 100 * 0.1 * (math.exp(0.1) - 1)
        assert epsilon == pytest.approx(expected)
        assert delta == pytest.approx(1e-6)

    def test_delta_accumulates(self):
        _, delta = advanced_composition(0.1, 1e-8, num_queries=10, delta_slack=1e-6)
        assert delta == pytest.approx(1e-6 + 10 * 1e-8)

    def test_beats_sequential_for_many_small_queries(self):
        per_query = 0.01
        k = 2000
        advanced, _ = advanced_composition(per_query, 0.0, k, delta_slack=1e-9)
        sequential = per_query * k
        assert advanced < sequential

    def test_single_query(self):
        epsilon, _ = advanced_composition(0.5, 0.0, num_queries=1, delta_slack=1e-9)
        assert epsilon >= 0.5  # advanced composition is not free for one query

    def test_rejects_invalid_inputs(self):
        with pytest.raises(ValueError):
            advanced_composition(0.1, 0.0, num_queries=0, delta_slack=1e-6)
        with pytest.raises(ValueError):
            advanced_composition(0.1, 0.0, num_queries=5, delta_slack=0.0)
        with pytest.raises(ValueError):
            advanced_composition(-0.1, 0.0, num_queries=5, delta_slack=1e-6)

    @given(
        st.floats(min_value=0.001, max_value=0.5),
        st.integers(min_value=1, max_value=500),
    )
    @settings(max_examples=50)
    def test_monotone_in_num_queries(self, epsilon, num_queries):
        smaller, _ = advanced_composition(epsilon, 0.0, num_queries, 1e-9)
        larger, _ = advanced_composition(epsilon, 0.0, num_queries + 1, 1e-9)
        assert larger >= smaller


class TestAmplification:
    def test_matches_theorem4_formula(self):
        epsilon, delta = amplification_by_sampling(1.0, 1e-6, sampling_probability=0.1)
        assert epsilon == pytest.approx(math.log(1 + 0.1 * (math.e - 1)))
        assert delta == pytest.approx(1e-7)

    def test_full_sampling_changes_nothing(self):
        epsilon, delta = amplification_by_sampling(0.7, 1e-6, sampling_probability=1.0)
        assert epsilon == pytest.approx(0.7)
        assert delta == pytest.approx(1e-6)

    def test_amplification_always_helps(self):
        epsilon, _ = amplification_by_sampling(1.0, 0.0, sampling_probability=0.5)
        assert epsilon < 1.0

    def test_rejects_invalid_probability(self):
        with pytest.raises(ValueError):
            amplification_by_sampling(1.0, 0.0, sampling_probability=0.0)
        with pytest.raises(ValueError):
            amplification_by_sampling(1.0, 0.0, sampling_probability=1.5)

    @given(
        st.floats(min_value=0.01, max_value=3.0),
        st.floats(min_value=0.01, max_value=0.99),
    )
    @settings(max_examples=50)
    def test_amplified_epsilon_below_original(self, epsilon, probability):
        amplified, _ = amplification_by_sampling(epsilon, 0.0, probability)
        assert amplified <= epsilon + 1e-12
