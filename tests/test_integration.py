"""End-to-end integration tests exercising the public API exactly as a user would."""

import numpy as np
import pytest

import repro
from repro.core import GenerationConfig, SynthesisPipeline
from repro.datasets import load_acs
from repro.generative import GenerativeModelSpec
from repro.privacy import PlausibleDeniabilityParams


class TestPublicApi:
    def test_top_level_exports(self):
        assert repro.__version__
        for name in (
            "Dataset",
            "Schema",
            "load_acs",
            "SynthesisPipeline",
            "GenerationConfig",
            "PlausibleDeniabilityParams",
            "theorem1_guarantee",
        ):
            assert hasattr(repro, name)


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def pipeline(self):
        data = load_acs(num_records=6000, seed=21)
        config = GenerationConfig(
            privacy=PlausibleDeniabilityParams(k=15, gamma=4.0, epsilon0=1.0),
            model=GenerativeModelSpec.with_total_epsilon(1.0, num_attributes=11, omega=9),
        )
        return SynthesisPipeline(data, config, rng=np.random.default_rng(1)).fit()

    def test_released_records_share_the_input_format(self, pipeline):
        report = pipeline.generate(num_records=30)
        released = report.released_dataset()
        assert released.schema == pipeline.splits.seeds.schema
        decoded = released.decoded_records()
        assert len(decoded) == len(released)
        # Decoded values come from the original domains (e.g. income classes).
        income_values = {record[-1] for record in decoded}
        assert income_values <= {"<=50K", ">50K"}

    def test_released_records_are_not_verbatim_copies_only(self, pipeline):
        report = pipeline.generate(num_records=50)
        released = report.released_dataset()
        seeds = {tuple(row) for row in pipeline.splits.seeds.data}
        novel = sum(1 for row in released.data if tuple(row) not in seeds)
        # With omega=9, nine attributes are re-sampled, so the released data
        # cannot be dominated by exact copies of input records.
        assert novel >= len(released) * 0.5

    def test_privacy_accounting_is_consistent(self, pipeline):
        model_epsilon, model_delta = pipeline.model_privacy_guarantee()
        release_epsilon, release_delta, _ = pipeline.release_privacy_guarantee()
        assert model_epsilon <= 1.0 + 1e-6
        assert 0 < release_delta < 1
        assert release_epsilon > 0

    def test_csv_round_trip_of_released_data(self, pipeline, tmp_path):
        from repro.datasets import Dataset

        report = pipeline.generate(num_records=10)
        released = report.released_dataset()
        path = tmp_path / "synthetic.csv"
        released.to_csv(path)
        reloaded = Dataset.from_csv(released.schema, path)
        assert reloaded == released

    def test_marginal_baseline_generation(self, pipeline):
        marginals = pipeline.generate_marginals(200)
        assert len(marginals) == 200
        assert marginals.schema == pipeline.splits.seeds.schema


class TestUtilityTrends:
    """Coarse utility checks on a mid-sized unnoised run (fast but meaningful)."""

    @pytest.fixture(scope="class")
    def setup(self):
        from repro.datasets.splits import split_dataset
        from repro.generative import fit_bayesian_network, fit_marginal_model

        data = load_acs(num_records=30_000, seed=23)
        splits = split_dataset(data, rng=np.random.default_rng(0))
        model = fit_bayesian_network(
            splits.structure,
            splits.parameters,
            spec=GenerativeModelSpec(omega=11, epsilon_structure=None, epsilon_parameters=None),
            rng=np.random.default_rng(1),
        )
        marginal = fit_marginal_model(splits.parameters, epsilon=None)
        rng = np.random.default_rng(2)
        synthetic = np.vstack([model.sample_record(rng) for _ in range(2500)])
        marginals_data = marginal.generate_many(2500, rng)
        reference = splits.seeds.sample(2500, rng).data
        return data.schema, reference, synthetic, marginals_data

    def test_synthetics_preserve_pairwise_structure_better_than_marginals(self, setup):
        from repro.stats.distance import pairwise_attribute_distances

        schema, reference, synthetic, marginals_data = setup
        synth_distances = pairwise_attribute_distances(reference, synthetic, schema.cardinalities)
        marg_distances = pairwise_attribute_distances(
            reference, marginals_data, schema.cardinalities
        )
        assert np.mean(list(synth_distances.values())) < np.mean(list(marg_distances.values()))

    def test_synthetics_match_single_attribute_marginals_reasonably(self, setup):
        from repro.stats.distance import single_attribute_distances

        schema, reference, synthetic, _ = setup
        distances = single_attribute_distances(reference, synthetic, schema.cardinalities)
        assert np.mean(distances) < 0.12
