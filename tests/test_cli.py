"""Tests for the command-line generator tool."""

import json

import pytest

from repro.cli import _release_warning, build_config, main
from repro.datasets.dataset import Dataset
from repro.datasets.metadata import read_metadata


class TestBuildConfig:
    def test_defaults_are_demo_scaled(self):
        config = build_config({}, num_attributes=11)
        # The paper's k=50 assumes ~1.2M seed records and releases nothing at
        # the CLI's demo scale, so the default is deliberately smaller.
        assert config.privacy.k == 10
        assert config.privacy.gamma == 4.0
        assert config.model.omega == 9

    def test_overrides_applied(self):
        config = build_config(
            {"k": 10, "gamma": 2.0, "omega": [5, 6], "total_epsilon": 0.5}, num_attributes=11
        )
        assert config.privacy.k == 10
        assert config.model.omega == (5, 6)

    def test_unnoised_model_when_total_epsilon_is_null(self):
        config = build_config({"total_epsilon": None}, num_attributes=11)
        assert config.model.epsilon_structure is None
        assert config.model.epsilon_parameters is None

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown config keys"):
            build_config({"not_a_key": 1}, num_attributes=11)


class TestReleaseWarning:
    def test_zero_releases_produce_a_warning(self):
        warning = _release_warning(0, 100, k=50, num_seed_records=2000)
        assert warning is not None
        assert "k=50" in warning
        assert "2000" in warning

    def test_successful_release_produces_no_warning(self):
        assert _release_warning(1, 100, k=50, num_seed_records=2000) is None
        assert _release_warning(100, 100, k=10, num_seed_records=2000) is None

    def test_zero_requested_produces_no_warning(self):
        assert _release_warning(0, 0, k=50, num_seed_records=2000) is None


class TestEndToEndCli:
    def test_sample_data_then_generate(self, tmp_path, capsys):
        demo_dir = tmp_path / "demo"
        exit_code = main(
            ["sample-data", "--output-dir", str(demo_dir), "--records", "4000", "--seed", "3"]
        )
        assert exit_code == 0
        assert (demo_dir / "acs.csv").exists()
        assert (demo_dir / "metadata.json").exists()
        assert (demo_dir / "config.json").exists()

        config_path = demo_dir / "config.json"
        config_path.write_text(
            json.dumps({"k": 10, "gamma": 4.0, "epsilon0": 1.0, "omega": 9, "total_epsilon": 1.0})
        )
        output_path = tmp_path / "synthetic.csv"
        exit_code = main(
            [
                "generate",
                "--input", str(demo_dir / "acs.csv"),
                "--metadata", str(demo_dir / "metadata.json"),
                "--config", str(config_path),
                "--output", str(output_path),
                "--records", "20",
            ]
        )
        assert exit_code == 0
        captured = capsys.readouterr()
        assert "records released" in captured.out

        schema = read_metadata(demo_dir / "metadata.json")
        released = Dataset.from_csv(schema, output_path)
        assert len(released) == 20
        assert released.schema == schema


class TestServeArguments:
    def test_serve_requires_an_input_source(self):
        with pytest.raises(SystemExit, match="either --scenario or both"):
            main(["serve", "--port", "0"])

    def test_serve_scenario_and_input_are_exclusive(self):
        with pytest.raises(SystemExit, match="mutually exclusive"):
            main(
                [
                    "serve",
                    "--scenario", "tiny-n",
                    "--input", "x.csv",
                    "--metadata", "x.json",
                ]
            )

    def test_serve_unknown_scenario_rejected(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            main(["serve", "--scenario", "not-a-scenario", "--port", "0"])
