"""Tests for the seed-based Bayesian-network synthesizer."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.generative.builder import GenerativeModelSpec, fit_bayesian_network
from repro.generative.bayesian_network import BayesianNetworkSynthesizer


@pytest.fixture(scope="module")
def toy_model(toy_dataset):
    spec = GenerativeModelSpec(omega=2, epsilon_structure=None, epsilon_parameters=None)
    return fit_bayesian_network(toy_dataset, toy_dataset, spec=spec, rng=np.random.default_rng(0))


class TestConstruction:
    def test_omega_validation(self, toy_model):
        with pytest.raises(ValueError):
            BayesianNetworkSynthesizer(
                toy_model.schema, toy_model.structure, toy_model.tables, omega=99
            )
        with pytest.raises(ValueError):
            BayesianNetworkSynthesizer(
                toy_model.schema, toy_model.structure, toy_model.tables, omega=()
            )

    def test_omega_accepts_iterable(self, toy_model):
        model = BayesianNetworkSynthesizer(
            toy_model.schema, toy_model.structure, toy_model.tables, omega=(1, 2, 3)
        )
        assert model.omegas == (1, 2, 3)

    def test_table_count_must_match_schema(self, toy_model):
        with pytest.raises(ValueError):
            BayesianNetworkSynthesizer(
                toy_model.schema, toy_model.structure, toy_model.tables[:-1], omega=2
            )

    def test_tables_must_match_structure_parents(self, toy_model):
        reordered = list(toy_model.tables)
        reordered[0], reordered[1] = reordered[1], reordered[0]
        with pytest.raises(ValueError):
            BayesianNetworkSynthesizer(
                toy_model.schema, toy_model.structure, reordered, omega=2
            )


class TestGeneration:
    def test_generated_record_is_in_domain(self, toy_model, toy_dataset, rng):
        seed = toy_dataset.record(0)
        candidate = toy_model.generate(seed, rng)
        assert candidate.shape == seed.shape
        for value, attribute in zip(candidate, toy_model.schema):
            assert 0 <= value < attribute.cardinality

    def test_omega_zero_copies_the_seed(self, toy_model, toy_dataset, rng):
        seed = toy_dataset.record(5)
        candidate = toy_model.generate_with_omega(seed, 0, rng)
        assert np.array_equal(candidate, seed)

    def test_fixed_attributes_are_copied(self, toy_model, toy_dataset, rng):
        seed = toy_dataset.record(3)
        omega = 2
        fixed = list(toy_model.structure.order[: len(toy_model.schema) - omega])
        for _ in range(10):
            candidate = toy_model.generate_with_omega(seed, omega, rng)
            assert np.array_equal(candidate[fixed], seed[fixed])

    def test_generate_does_not_mutate_seed(self, toy_model, toy_dataset, rng):
        seed = toy_dataset.record(3)
        original = seed.copy()
        toy_model.generate(seed, rng)
        assert np.array_equal(seed, original)

    def test_invalid_omega_rejected(self, toy_model, toy_dataset, rng):
        with pytest.raises(ValueError):
            toy_model.generate_with_omega(toy_dataset.record(0), 9, rng)

    def test_invalid_seed_shape_rejected(self, toy_model, rng):
        with pytest.raises(ValueError):
            toy_model.generate(np.array([0, 1]), rng)

    def test_sample_record_is_full_resample(self, toy_model, rng):
        record = toy_model.sample_record(rng)
        assert record.shape == (len(toy_model.schema),)

    def test_generation_is_reproducible_with_same_rng(self, toy_model, toy_dataset):
        seed = toy_dataset.record(7)
        first = toy_model.generate(seed, np.random.default_rng(42))
        second = toy_model.generate(seed, np.random.default_rng(42))
        assert np.array_equal(first, second)


class TestSeedProbabilities:
    def test_seed_probability_zero_when_fixed_attributes_differ(self, toy_model, toy_dataset, rng):
        omega = 1
        seed = toy_dataset.record(0)
        candidate = toy_model.generate_with_omega(seed, omega, rng)
        fixed = list(toy_model.structure.order[:-1])
        other = candidate.copy()
        other[fixed[0]] = (other[fixed[0]] + 1) % toy_model.schema[fixed[0]].cardinality
        assert toy_model.seed_probability_with_omega(other, candidate, omega) == 0.0

    def test_seed_probability_positive_for_true_seed(self, toy_model, toy_dataset, rng):
        seed = toy_dataset.record(1)
        candidate = toy_model.generate_with_omega(seed, 2, rng)
        assert toy_model.seed_probability_with_omega(seed, candidate, 2) > 0.0

    def test_matching_seeds_share_the_same_probability(self, toy_model, toy_dataset, rng):
        # All plausible seeds of a candidate have identical generation
        # probability under the seed-based synthesizer (the key efficiency
        # property the paper exploits).
        omega = 2
        seed = toy_dataset.record(2)
        candidate = toy_model.generate_with_omega(seed, omega, rng)
        probabilities = toy_model.batch_seed_probabilities_with_omega(
            toy_dataset.data, candidate, omega
        )
        positive = probabilities[probabilities > 0]
        assert positive.size >= 1
        assert np.allclose(positive, positive[0])

    def test_batch_matches_scalar(self, toy_model, toy_dataset, rng):
        candidate = toy_model.generate(toy_dataset.record(0), rng)
        batch = toy_model.batch_seed_probabilities(toy_dataset.data[:50], candidate)
        scalar = [
            toy_model.seed_probability(toy_dataset.record(row), candidate) for row in range(50)
        ]
        assert np.allclose(batch, scalar)

    def test_omega_equal_to_m_makes_every_record_a_plausible_seed(self, toy_model, toy_dataset, rng):
        full_resample = BayesianNetworkSynthesizer(
            toy_model.schema, toy_model.structure, toy_model.tables, omega=len(toy_model.schema)
        )
        candidate = full_resample.generate(toy_dataset.record(0), rng)
        probabilities = full_resample.batch_seed_probabilities(toy_dataset.data[:100], candidate)
        assert np.all(probabilities > 0)
        assert np.allclose(probabilities, probabilities[0])

    def test_omega_mixture_probability_is_average(self, toy_model, toy_dataset, rng):
        mixture = BayesianNetworkSynthesizer(
            toy_model.schema, toy_model.structure, toy_model.tables, omega=(1, 3)
        )
        seed = toy_dataset.record(0)
        candidate = mixture.generate(seed, rng)
        expected = 0.5 * (
            mixture.seed_probability_with_omega(seed, candidate, 1)
            + mixture.seed_probability_with_omega(seed, candidate, 3)
        )
        assert mixture.seed_probability(seed, candidate) == pytest.approx(expected)

    def test_candidate_factor_is_product_of_resampled_conditionals(self, toy_model, toy_dataset, rng):
        seed = toy_dataset.record(0)
        candidate = toy_model.generate_with_omega(seed, 2, rng)
        factor = toy_model.candidate_factor(candidate, 2)
        assert 0.0 < factor <= 1.0
        assert toy_model.seed_probability_with_omega(seed, candidate, 2) == pytest.approx(factor)

    @given(omega=st.integers(min_value=0, max_value=4))
    @settings(max_examples=20, deadline=None)
    def test_probabilities_always_in_unit_interval(self, toy_model, toy_dataset, omega):
        rng = np.random.default_rng(omega)
        seed = toy_dataset.record(int(rng.integers(len(toy_dataset))))
        candidate = toy_model.generate_with_omega(seed, omega, rng)
        probabilities = toy_model.batch_seed_probabilities_with_omega(
            toy_dataset.data[:100], candidate, omega
        )
        assert np.all(probabilities >= 0.0)
        assert np.all(probabilities <= 1.0 + 1e-12)


class TestPrediction:
    def test_most_likely_value_in_domain(self, toy_model, toy_dataset):
        for attribute in range(len(toy_model.schema)):
            value = toy_model.most_likely_value(toy_dataset.record(0), attribute)
            assert 0 <= value < toy_model.schema[attribute].cardinality

    def test_prediction_uses_the_evidence(self, toy_model, toy_schema):
        # size (attribute 2) strongly depends on age (attribute 0) in the toy
        # data: young -> small (0), old -> large (1).
        young_record = np.array([2, 0, 0, 0])
        old_record = np.array([18, 0, 0, 0])
        assert toy_model.most_likely_value(young_record, 2) == 0
        assert toy_model.most_likely_value(old_record, 2) == 1

    def test_conditional_scores_shape(self, toy_model, toy_dataset):
        scores = toy_model.conditional_scores(toy_dataset.record(0), 0)
        assert scores.shape == (toy_model.schema[0].cardinality,)
        assert np.all(scores >= 0)

    def test_acs_model_predicts_better_than_chance(self, unnoised_model, acs_splits):
        test = acs_splits.test
        schema = unnoised_model.schema
        income_index = schema.index_of("WAGP")
        correct = 0
        total = 150
        for row in range(total):
            record = test.record(row)
            if unnoised_model.most_likely_value(record, income_index) == record[income_index]:
                correct += 1
        majority_rate = max(
            np.mean(test.data[:total, income_index] == 0),
            np.mean(test.data[:total, income_index] == 1),
        )
        assert correct / total >= majority_rate - 0.05
