"""Tests for dependency structures and CFS structure learning."""

import networkx as nx
import numpy as np
import pytest

from repro.datasets.dataset import Dataset
from repro.generative.structure import (
    DependencyStructure,
    StructureLearner,
    StructureLearningConfig,
)
from repro.privacy.accountant import PrivacyAccountant
from repro.testing.invariants import check_structure_engine_equivalence


class TestDependencyStructure:
    def test_empty_structure(self):
        structure = DependencyStructure.empty(4)
        assert structure.num_attributes == 4
        assert structure.num_edges == 0
        assert sorted(structure.order) == [0, 1, 2, 3]

    def test_from_parent_map_builds_topological_order(self):
        structure = DependencyStructure.from_parent_map({2: (0, 1), 1: (0,)}, 3)
        assert structure.parents == ((), (0,), (0, 1))
        position = {a: i for i, a in enumerate(structure.order)}
        assert position[0] < position[1] < position[2]

    def test_from_parent_map_rejects_cycle(self):
        with pytest.raises(ValueError, match="cycle"):
            DependencyStructure.from_parent_map({0: (1,), 1: (0,)}, 2)

    def test_rejects_non_topological_order(self):
        with pytest.raises(ValueError):
            DependencyStructure(parents=((1,), ()), order=(0, 1))

    def test_rejects_self_parent(self):
        with pytest.raises(ValueError):
            DependencyStructure(parents=((0,), ()), order=(0, 1))

    def test_rejects_bad_order_permutation(self):
        with pytest.raises(ValueError):
            DependencyStructure(parents=((), ()), order=(0, 0))

    def test_rejects_out_of_range_parent(self):
        with pytest.raises(ValueError):
            DependencyStructure(parents=((), (5,)), order=(0, 1))

    def test_as_digraph(self):
        structure = DependencyStructure.from_parent_map({2: (0,), 1: (0,)}, 3)
        graph = structure.as_digraph()
        assert set(graph.edges()) == {(0, 2), (0, 1)}
        assert nx.is_directed_acyclic_graph(graph)

    def test_num_edges(self):
        structure = DependencyStructure.from_parent_map({2: (0, 1)}, 3)
        assert structure.num_edges == 2


class TestConfig:
    def test_defaults_valid(self):
        config = StructureLearningConfig()
        assert config.max_parent_cost >= 1

    def test_validation(self):
        with pytest.raises(ValueError):
            StructureLearningConfig(max_parent_cost=0)
        with pytest.raises(ValueError):
            StructureLearningConfig(max_parents=-1)
        with pytest.raises(ValueError):
            StructureLearningConfig(epsilon_entropy=0.0)
        with pytest.raises(ValueError):
            StructureLearningConfig(epsilon_count=0.0)
        with pytest.raises(ValueError):
            StructureLearningConfig(max_table_cells=0)


class TestMeritAndCost:
    def test_parent_cost_is_product_of_bucketized_cardinalities(self):
        assert StructureLearner.parent_cost((0, 2), [4, 3, 5]) == 20
        assert StructureLearner.parent_cost((), [4, 3, 5]) == 1

    def test_merit_of_empty_set_is_zero(self):
        tables = type("T", (), {"target_parent": np.zeros((2, 2)), "parent_parent": np.zeros((2, 2))})
        assert StructureLearner.merit_score(0, (), tables) == 0.0

    def test_merit_rewards_relevance_and_penalizes_redundancy(self):
        class Tables:
            target_parent = np.array([[0.0, 0.5, 0.5], [0.0, 0.0, 0.0], [0.0, 0.0, 0.0]])
            parent_parent = np.zeros((3, 3))

        independent_parents = StructureLearner.merit_score(0, (1, 2), Tables())

        class RedundantTables(Tables):
            parent_parent = np.array([[0.0, 0.0, 0.0], [0.0, 0.0, 0.9], [0.0, 0.9, 0.0]])

        redundant_parents = StructureLearner.merit_score(0, (1, 2), RedundantTables())
        assert independent_parents > redundant_parents


class TestLearning:
    def test_learns_the_planted_dependencies(self, toy_dataset):
        learner = StructureLearner(StructureLearningConfig(max_parents=2))
        structure = learner.learn(toy_dataset, np.random.default_rng(0))
        # size depends on age and label depends on size in the toy generator;
        # the learner must recover at least one of these as an edge (in either
        # direction, since CFS edges are about correlation).
        graph = structure.as_digraph().to_undirected()
        assert graph.has_edge(0, 2) or graph.has_edge(2, 3)

    def test_result_is_acyclic_with_valid_order(self, toy_dataset):
        structure = StructureLearner().learn(toy_dataset, np.random.default_rng(0))
        assert nx.is_directed_acyclic_graph(structure.as_digraph())
        position = {a: i for i, a in enumerate(structure.order)}
        for child, parents in enumerate(structure.parents):
            for parent in parents:
                assert position[parent] < position[child]

    def test_respects_max_parents(self, toy_dataset):
        structure = StructureLearner(StructureLearningConfig(max_parents=1)).learn(
            toy_dataset, np.random.default_rng(0)
        )
        assert all(len(parents) <= 1 for parents in structure.parents)

    def test_respects_max_parent_cost(self, acs_splits):
        config = StructureLearningConfig(max_parent_cost=10)
        structure = StructureLearner(config).learn(
            acs_splits.structure, np.random.default_rng(0)
        )
        bucket_cards = acs_splits.structure.schema.bucketized_cardinalities
        for parents in structure.parents:
            assert StructureLearner.parent_cost(parents, bucket_cards) <= 10

    def test_respects_max_table_cells(self, acs_splits):
        config = StructureLearningConfig(max_table_cells=200)
        structure = StructureLearner(config).learn(
            acs_splits.structure, np.random.default_rng(0)
        )
        schema = acs_splits.structure.schema
        bucket_cards = schema.bucketized_cardinalities
        for attribute, parents in enumerate(structure.parents):
            cells = StructureLearner.parent_cost(parents, bucket_cards) * schema.cardinalities[attribute]
            assert cells <= 200

    def test_empty_dataset_rejected(self, toy_schema):
        empty = Dataset(toy_schema, np.empty((0, 4), dtype=np.int64))
        with pytest.raises(ValueError):
            StructureLearner().learn(empty)

    def test_dp_learning_records_budget(self, toy_dataset):
        accountant = PrivacyAccountant()
        config = StructureLearningConfig(epsilon_entropy=0.5, epsilon_count=0.1)
        StructureLearner(config, accountant).learn(toy_dataset, np.random.default_rng(0))
        labels = accountant.labels()
        assert "structure/entropy" in labels
        assert "structure/count" in labels
        # m=4 attributes: 2m + m(m-1) + m(m-1)/2 = 8 + 12 + 6 = 26 entropy values.
        entropy_entry = next(e for e in accountant.entries if e.label == "structure/entropy")
        assert entropy_entry.count == 26

    def test_non_dp_learning_spends_nothing(self, toy_dataset):
        accountant = PrivacyAccountant()
        StructureLearner(StructureLearningConfig(), accountant).learn(
            toy_dataset, np.random.default_rng(0)
        )
        assert accountant.entries == []

    def test_dp_learning_with_large_epsilon_matches_unnoised_structure(self, toy_dataset):
        unnoised = StructureLearner().learn(toy_dataset, np.random.default_rng(0))
        nearly_exact = StructureLearner(
            StructureLearningConfig(epsilon_entropy=1e6, epsilon_count=1e6)
        ).learn(toy_dataset, np.random.default_rng(0))
        assert unnoised.parents == nearly_exact.parents

    def test_dp_learning_is_deterministic_given_rng(self, toy_dataset):
        config = StructureLearningConfig(epsilon_entropy=0.5)
        first = StructureLearner(config).learn(toy_dataset, np.random.default_rng(7))
        second = StructureLearner(config).learn(toy_dataset, np.random.default_rng(7))
        assert first.parents == second.parents

    def test_dp_learning_requires_explicit_rng(self, toy_dataset):
        config = StructureLearningConfig(epsilon_entropy=0.5)
        with pytest.raises(ValueError, match="requires an explicit"):
            StructureLearner(config).learn(toy_dataset)

    def test_non_dp_learning_accepts_no_rng(self, toy_dataset):
        structure = StructureLearner().learn(toy_dataset)
        assert structure.num_attributes == 4


class TestEngineEquivalence:
    """The vectorized engine must reproduce the loop reference exactly.

    The entropy / structure / DP-spend / stream-position comparisons go
    through the shared conformance checker
    (:func:`repro.testing.invariants.check_structure_engine_equivalence`);
    the remaining tests cover aspects the checker does not define.
    """

    @staticmethod
    def _learners(**kwargs):
        reference = StructureLearner(StructureLearningConfig(engine="reference", **kwargs))
        vectorized = StructureLearner(StructureLearningConfig(engine="vectorized", **kwargs))
        return reference, vectorized

    def test_rejects_unknown_engine(self):
        with pytest.raises(ValueError, match="engine"):
            StructureLearningConfig(engine="turbo")

    def test_entropies_and_structure_identical_on_acs_sample(self, acs_splits):
        # Covers bit-exact entropy tables and identical learned structures.
        check_structure_engine_equivalence(acs_splits.structure)

    def test_public_entropy_tables_match_learn_inputs(self, acs_splits):
        reference, vectorized = self._learners()
        for expected, actual in zip(
            reference.entropy_tables(acs_splits.structure),
            vectorized.entropy_tables(acs_splits.structure),
        ):
            assert np.array_equal(expected, actual)

    def test_correlations_are_bit_identical(self, acs_splits):
        reference, vectorized = self._learners()
        expected = reference._correlations(acs_splits.structure, None)
        actual = vectorized._correlations(acs_splits.structure, None)
        assert np.array_equal(expected.target_parent, actual.target_parent)
        assert np.array_equal(expected.parent_parent, actual.parent_parent)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_parents": 1},
            {"max_parents": 2, "max_parent_cost": 10},
            {"max_table_cells": 200},
        ],
    )
    def test_learned_structure_identical_under_search_constraints(self, acs_splits, kwargs):
        check_structure_engine_equivalence(acs_splits.structure, **kwargs)

    def test_learned_structure_identical_on_toy_data(self, toy_dataset):
        check_structure_engine_equivalence(toy_dataset, max_parents=3)

    def test_dp_spend_and_stream_position_identical(self, toy_dataset):
        """Both engines record the same ledger entries and consume the same
        number of Laplace variates (equal generator states after learning)."""
        check_structure_engine_equivalence(
            toy_dataset, seed=11, epsilon_entropy=0.5, epsilon_count=0.1
        )

    def test_dp_noisy_structure_is_valid_in_both_engines(self, toy_dataset):
        # DP structures are not expected to be identical across engines (the
        # noise is assigned to entropy values in a different order), but both
        # must produce valid DAG structures — the checker verifies exactly
        # that contract.
        structure = check_structure_engine_equivalence(
            toy_dataset, seed=5, epsilon_entropy=0.5
        )
        assert nx.is_directed_acyclic_graph(structure.as_digraph())
