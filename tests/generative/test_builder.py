"""Tests for end-to-end model fitting and privacy-budget calibration."""

import numpy as np
import pytest

from repro.generative.builder import (
    GenerativeModelSpec,
    calibrate_parameter_epsilon,
    calibrate_structure_epsilon,
    fit_bayesian_network,
    fit_marginal_model,
)
from repro.generative.structure import DependencyStructure, StructureLearningConfig
from repro.privacy.accountant import PrivacyAccountant
from repro.privacy.composition import advanced_composition, sequential_composition


class TestCalibration:
    def test_structure_calibration_respects_budget(self):
        epsilon_entropy, epsilon_count = calibrate_structure_epsilon(1.0, num_attributes=11)
        m = 11
        num_queries = 2 * m + m * (m - 1) + (m * (m - 1)) // 2
        advanced, _ = advanced_composition(epsilon_entropy, 0.0, num_queries, 1e-9)
        sequential = epsilon_entropy * num_queries
        composed = min(advanced, sequential)
        total, _ = sequential_composition([(composed, 0.0), (epsilon_count, 0.0)])
        assert total <= 1.0 + 1e-6

    def test_parameter_calibration_respects_budget(self):
        epsilon_p = calibrate_parameter_epsilon(1.0, num_attributes=11)
        advanced, _ = advanced_composition(epsilon_p, 0.0, 11, 1e-9)
        sequential = epsilon_p * 11
        assert min(advanced, sequential) <= 1.0 + 1e-6

    def test_parameter_calibration_uses_tighter_composition(self):
        # For few queries plain sequential composition dominates: eps/m.
        epsilon_p = calibrate_parameter_epsilon(1.0, num_attributes=11)
        assert epsilon_p == pytest.approx(1.0 / 11, rel=1e-3)

    def test_calibration_scales_with_budget(self):
        small = calibrate_parameter_epsilon(0.1, 11)
        large = calibrate_parameter_epsilon(1.0, 11)
        assert large > small

    def test_calibration_validation(self):
        with pytest.raises(ValueError):
            calibrate_structure_epsilon(1.0, 0)
        with pytest.raises(ValueError):
            calibrate_structure_epsilon(1.0, 11, count_fraction=1.5)
        with pytest.raises(ValueError):
            calibrate_parameter_epsilon(1.0, 0)

    def test_with_total_epsilon_builds_consistent_spec(self):
        spec = GenerativeModelSpec.with_total_epsilon(1.0, num_attributes=11, omega=9)
        assert spec.omega == 9
        assert spec.epsilon_structure == spec.structure.epsilon_entropy
        assert spec.epsilon_parameters == pytest.approx(1.0 / 11, rel=1e-3)

    def test_with_total_epsilon_preserves_structure_knobs(self):
        spec = GenerativeModelSpec.with_total_epsilon(
            1.0,
            num_attributes=11,
            omega=9,
            structure=StructureLearningConfig(max_parent_cost=50, max_table_cells=500),
        )
        assert spec.structure.max_parent_cost == 50
        assert spec.structure.max_table_cells == 500


class TestFitBayesianNetwork:
    def test_unnoised_fit(self, acs_splits):
        spec = GenerativeModelSpec(omega=9, epsilon_structure=None, epsilon_parameters=None)
        model = fit_bayesian_network(acs_splits.structure, acs_splits.parameters, spec=spec)
        assert len(model.tables) == 11
        assert model.omegas == (9,)

    def test_dp_fit_records_budget_and_respects_target(self, acs_splits):
        accountant = PrivacyAccountant()
        spec = GenerativeModelSpec.with_total_epsilon(1.0, num_attributes=11, omega=9)
        fit_bayesian_network(
            acs_splits.structure,
            acs_splits.parameters,
            spec=spec,
            accountant=accountant,
            rng=np.random.default_rng(0),
        )
        epsilon, delta = accountant.total_guarantee(disjoint_scopes=True)
        assert epsilon <= 1.0 + 1e-6
        assert delta <= 1e-8

    def test_reusing_a_precomputed_structure(self, acs_splits):
        structure = DependencyStructure.empty(11)
        spec = GenerativeModelSpec(omega=9, epsilon_structure=None, epsilon_parameters=None)
        model = fit_bayesian_network(
            acs_splits.structure, acs_splits.parameters, spec=spec, structure=structure
        )
        assert model.structure.num_edges == 0

    def test_mismatched_schemas_rejected(self, acs_splits, toy_dataset):
        with pytest.raises(ValueError):
            fit_bayesian_network(acs_splits.structure, toy_dataset)

    def test_fit_is_deterministic_given_rng(self, acs_splits):
        spec = GenerativeModelSpec.with_total_epsilon(1.0, num_attributes=11, omega=9)
        first = fit_bayesian_network(
            acs_splits.structure, acs_splits.parameters, spec=spec, rng=np.random.default_rng(11)
        )
        second = fit_bayesian_network(
            acs_splits.structure, acs_splits.parameters, spec=spec, rng=np.random.default_rng(11)
        )
        assert first.structure.parents == second.structure.parents
        for a, b in zip(first.tables, second.tables):
            assert np.allclose(a.table, b.table)


class TestFitMarginalModel:
    def test_fit_marginal_model(self, acs_splits):
        model = fit_marginal_model(
            acs_splits.parameters, epsilon=0.5, rng=np.random.default_rng(0)
        )
        assert len(model.marginals) == 11

    def test_fit_marginal_model_with_noise_requires_rng(self, acs_splits):
        with pytest.raises(ValueError, match="requires an explicit rng"):
            fit_marginal_model(acs_splits.parameters, epsilon=0.5)

    def test_fit_marginal_model_without_noise(self, acs_splits):
        model = fit_marginal_model(acs_splits.parameters, epsilon=None)
        assert len(model.marginals) == 11
