"""Tests for Dirichlet-multinomial parameter learning."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.generative.parameters import (
    ConditionalParameters,
    ParameterLearner,
    sample_dirichlet_rows,
)
from repro.generative.structure import DependencyStructure
from repro.privacy.accountant import PrivacyAccountant


@pytest.fixture()
def toy_structure():
    # size (2) depends on age (0); label (3) depends on size (2) and color (1).
    return DependencyStructure.from_parent_map({2: (0,), 3: (2, 1)}, 4)


@pytest.fixture()
def learned_tables(toy_dataset, toy_structure):
    return ParameterLearner().learn(toy_dataset, toy_structure, np.random.default_rng(0))


class TestConditionalParameters:
    def test_root_attribute_has_single_configuration(self, learned_tables):
        age_table = learned_tables[0]
        assert age_table.parents == ()
        assert age_table.num_configurations == 1
        assert age_table.cardinality == 20

    def test_child_configuration_count(self, learned_tables):
        label_table = learned_tables[3]
        assert label_table.parents == (2, 1)
        assert label_table.num_configurations == 2 * 3

    def test_rows_are_distributions(self, learned_tables):
        for table in learned_tables:
            assert np.allclose(table.table.sum(axis=1), 1.0)
            assert np.all(table.table >= 0)

    def test_configuration_index_round_trip(self, learned_tables):
        label_table = learned_tables[3]
        seen = set()
        for size in range(2):
            for color in range(3):
                seen.add(label_table.configuration_index(np.array([size, color])))
        assert seen == set(range(6))

    def test_configuration_index_validation(self, learned_tables):
        label_table = learned_tables[3]
        with pytest.raises(ValueError):
            label_table.configuration_index(np.array([0]))
        with pytest.raises(ValueError):
            label_table.configuration_index(np.array([5, 0]))

    def test_configuration_indices_vectorized(self, learned_tables):
        label_table = learned_tables[3]
        matrix = np.array([[0, 0], [1, 2], [0, 1]])
        expected = [label_table.configuration_index(row) for row in matrix]
        assert label_table.configuration_indices(matrix).tolist() == expected

    def test_distribution_requires_parents_for_child(self, learned_tables):
        with pytest.raises(ValueError):
            learned_tables[3].distribution(None)

    def test_probability_lookup(self, learned_tables):
        label_table = learned_tables[3]
        distribution = label_table.distribution(np.array([1, 0]))
        assert label_table.probability(1, np.array([1, 0])) == pytest.approx(distribution[1])
        with pytest.raises(ValueError):
            label_table.probability(9, np.array([1, 0]))

    def test_sample_stays_in_domain(self, learned_tables, rng):
        label_table = learned_tables[3]
        samples = [label_table.sample(rng, np.array([1, 2])) for _ in range(100)]
        assert set(samples) <= {0, 1}

    def test_sample_batch_matches_sample_distribution(self, learned_tables, rng):
        label_table = learned_tables[3]
        configs = np.full(4000, label_table.configuration_index(np.array([1, 2])))
        batch = label_table.sample_batch(rng, configs)
        scalar = np.array(
            [label_table.sample(rng, np.array([1, 2])) for _ in range(4000)]
        )
        assert set(batch.tolist()) <= {0, 1}
        assert abs(batch.mean() - scalar.mean()) < 0.05

    def test_sample_batch_never_emits_zero_probability_values(self, rng):
        # Regression: a cumulative total that rounds below 1.0 must not let a
        # uniform draw land past the last positive-probability value (the
        # generated record would later fail the privacy test's positive-
        # seed-probability invariant).
        table = ConditionalParameters(
            attribute_index=0,
            parents=(),
            parent_cardinalities=(),
            table=np.array([[1.0 - 3e-7, 3e-7 - 1e-9, 0.0, 0.0]]),
            counts=np.zeros((1, 4)),
        )
        samples = table.sample_batch(rng, np.zeros(20000, dtype=np.int64))
        assert set(samples.tolist()) <= {0, 1}

    def test_sample_batch_zero_draw_skips_leading_zero_probability(self):
        # Regression: a uniform draw of exactly 0.0 must not select a leading
        # zero-probability value (strict `<` counting used to pick index 0).
        table = ConditionalParameters(
            attribute_index=0,
            parents=(),
            parent_cardinalities=(),
            table=np.array([[0.0, 0.0, 0.4, 0.6]]),
            counts=np.zeros((1, 4)),
        )

        class ZeroRng:
            def random(self, size):
                return np.zeros(size)

        samples = table.sample_batch(ZeroRng(), np.zeros(5, dtype=np.int64))
        assert samples.tolist() == [2] * 5

    def test_probabilities_batch_matches_scalar(self, learned_tables):
        label_table = learned_tables[3]
        configs = np.array([0, 3, 5, 1])
        values = np.array([0, 1, 0, 1])
        batched = label_table.probabilities_batch(values, configs)
        for index in range(4):
            row = label_table.table[configs[index]]
            assert batched[index] == pytest.approx(row[values[index]])

    def test_probabilities_batch_validation(self, learned_tables):
        label_table = learned_tables[3]
        with pytest.raises(ValueError):
            label_table.probabilities_batch(np.array([0, 1]), np.array([0]))
        with pytest.raises(ValueError):
            label_table.probabilities_batch(np.array([9]), np.array([0]))
        with pytest.raises(ValueError):
            label_table.sample_batch(np.random.default_rng(0), np.array([99]))

    def test_resample_table_produces_valid_distributions(self, learned_tables, rng):
        resampled = learned_tables[3].resample_table(rng)
        assert np.allclose(resampled.table.sum(axis=1), 1.0)
        assert resampled.table.shape == learned_tables[3].table.shape

    def test_resample_table_is_deterministic_given_rng(self, learned_tables):
        first = learned_tables[3].resample_table(np.random.default_rng(9))
        second = learned_tables[3].resample_table(np.random.default_rng(9))
        assert np.array_equal(first.table, second.table)

    def test_resample_table_concentrates_around_posterior_mean(self, learned_tables):
        # With many posterior draws the sample mean approaches the posterior
        # mean, confirming the batched gamma sampler draws from the right
        # Dirichlet (distribution-level check; the RNG stream intentionally
        # differs from the old per-row ``rng.dirichlet`` loop).
        base = learned_tables[3]
        posterior = base.counts + np.asarray(base.prior)[None, :]
        expected = posterior / posterior.sum(axis=1, keepdims=True)
        rng = np.random.default_rng(17)
        mean = np.mean([base.resample_table(rng).table for _ in range(400)], axis=0)
        assert np.allclose(mean, expected, atol=0.05)

    def test_table_shape_validation(self):
        with pytest.raises(ValueError):
            ConditionalParameters(
                attribute_index=0,
                parents=(1,),
                parent_cardinalities=(3,),
                table=np.full((2, 2), 0.5),
                counts=np.zeros((2, 2)),
            )

    def test_rows_must_sum_to_one(self):
        with pytest.raises(ValueError):
            ConditionalParameters(
                attribute_index=0,
                parents=(),
                parent_cardinalities=(),
                table=np.array([[0.5, 0.4]]),
                counts=np.zeros((1, 2)),
            )


class TestParameterLearner:
    def test_learned_conditionals_reflect_planted_dependence(self, toy_dataset, toy_structure):
        tables = ParameterLearner().learn(toy_dataset, toy_structure, np.random.default_rng(0))
        size_table = tables[2]
        # In the toy data, size is almost always 0 for young ages and 1 for old
        # ages; the conditional table must capture that switch.
        young_bucket = np.array([0])
        old_bucket = np.array([3])
        assert size_table.probability(0, young_bucket) > 0.7
        assert size_table.probability(1, old_bucket) > 0.7

    def test_marginal_prior_used_for_unseen_configurations(self, toy_schema, toy_structure):
        # Build a dataset where one parent configuration never occurs; its
        # conditional must fall back to the attribute's marginal, not uniform.
        from repro.datasets.dataset import Dataset

        rng = np.random.default_rng(0)
        age = rng.integers(0, 5, size=500)  # only the first age bucket occurs
        color = rng.integers(0, 3, size=500)
        size = np.zeros(500, dtype=np.int64)
        size[:50] = 1  # marginal strongly favours size=0
        label = rng.integers(0, 2, size=500)
        dataset = Dataset(toy_schema, np.column_stack([age, color, size, label]))
        tables = ParameterLearner(alpha=1.0).learn(dataset, toy_structure, rng)
        unseen_configuration = np.array([3])  # age bucket 3 never appears
        distribution = tables[2].distribution(unseen_configuration)
        assert distribution[0] > 0.8

    def test_dp_noise_changes_counts(self, toy_dataset, toy_structure):
        exact = ParameterLearner().learn(toy_dataset, toy_structure, np.random.default_rng(1))
        noisy = ParameterLearner(epsilon=0.5).learn(
            toy_dataset, toy_structure, np.random.default_rng(1)
        )
        assert not np.allclose(exact[3].table, noisy[3].table)

    def test_dp_with_huge_epsilon_matches_exact(self, toy_dataset, toy_structure):
        exact = ParameterLearner(truncation_multiplier=0.0).learn(
            toy_dataset, toy_structure, np.random.default_rng(1)
        )
        nearly_exact = ParameterLearner(epsilon=1e7, truncation_multiplier=0.0).learn(
            toy_dataset, toy_structure, np.random.default_rng(1)
        )
        for first, second in zip(exact, nearly_exact):
            assert np.allclose(first.table, second.table, atol=1e-3)

    def test_dp_learning_records_budget_per_attribute(self, toy_dataset, toy_structure):
        accountant = PrivacyAccountant()
        ParameterLearner(epsilon=0.5, accountant=accountant).learn(
            toy_dataset, toy_structure, np.random.default_rng(0)
        )
        entry = accountant.entries[0]
        assert entry.label == "parameters/counts"
        assert entry.count == 4
        assert entry.scope == "parameter-data"

    def test_non_dp_learning_spends_nothing(self, toy_dataset, toy_structure):
        accountant = PrivacyAccountant()
        ParameterLearner(accountant=accountant).learn(
            toy_dataset, toy_structure, np.random.default_rng(0)
        )
        assert accountant.entries == []

    def test_sampled_parameters_are_valid_distributions(self, toy_dataset, toy_structure):
        tables = ParameterLearner(sample_parameters=True).learn(
            toy_dataset, toy_structure, np.random.default_rng(0)
        )
        for table in tables:
            assert np.allclose(table.table.sum(axis=1), 1.0)

    def test_empty_dataset_rejected(self, toy_schema, toy_structure):
        from repro.datasets.dataset import Dataset

        empty = Dataset(toy_schema, np.empty((0, 4), dtype=np.int64))
        with pytest.raises(ValueError):
            ParameterLearner().learn(empty, toy_structure)

    def test_structure_size_mismatch_rejected(self, toy_dataset):
        wrong_structure = DependencyStructure.empty(3)
        with pytest.raises(ValueError):
            ParameterLearner().learn(toy_dataset, wrong_structure)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            ParameterLearner(epsilon=0.0)
        with pytest.raises(ValueError):
            ParameterLearner(alpha=0.0)
        with pytest.raises(ValueError):
            ParameterLearner(truncation_multiplier=-1.0)

    def test_dp_learning_requires_explicit_rng(self, toy_dataset, toy_structure):
        with pytest.raises(ValueError, match="requires"):
            ParameterLearner(epsilon=0.5).learn(toy_dataset, toy_structure)

    def test_posterior_sampling_requires_explicit_rng(self, toy_dataset, toy_structure):
        with pytest.raises(ValueError, match="requires"):
            ParameterLearner(sample_parameters=True).learn(toy_dataset, toy_structure)

    def test_deterministic_learning_accepts_no_rng(self, toy_dataset, toy_structure):
        tables = ParameterLearner().learn(toy_dataset, toy_structure)
        assert len(tables) == 4


class TestSampleDirichletRows:
    def test_rows_are_distributions(self, rng):
        alphas = np.array([[5.0, 2.0, 1.0], [0.5, 0.5, 0.5], [100.0, 1.0, 1.0]])
        sample = sample_dirichlet_rows(rng, alphas)
        assert sample.shape == alphas.shape
        assert np.allclose(sample.sum(axis=1), 1.0)
        assert np.all(sample >= 0)

    def test_mean_matches_dirichlet_mean(self):
        rng = np.random.default_rng(3)
        alphas = np.array([[4.0, 2.0, 2.0]])
        draws = np.vstack([sample_dirichlet_rows(rng, alphas) for _ in range(8000)])
        assert np.allclose(draws.mean(axis=0), [0.5, 0.25, 0.25], atol=0.02)

    def test_degenerate_rows_fall_back_to_normalized_alphas(self):
        # Alphas this small underflow every gamma draw to zero; the row must
        # still come back as a valid distribution.
        sample = sample_dirichlet_rows(
            np.random.default_rng(0), np.full((3, 4), 1e-300)
        )
        assert np.allclose(sample.sum(axis=1), 1.0)

    def test_batched_sampling_consumes_one_gamma_block(self, learned_tables):
        # The whole posterior matrix is drawn with a single standard_gamma
        # call: the generator must advance exactly as one batched call does.
        base = learned_tables[3]
        posterior = np.maximum(
            base.counts + np.asarray(base.prior)[None, :], 1e-9
        )
        consumed = np.random.default_rng(21)
        base.resample_table(consumed)
        expected = np.random.default_rng(21)
        expected.standard_gamma(posterior)
        assert consumed.bit_generator.state == expected.bit_generator.state

    @given(alpha=st.floats(min_value=0.1, max_value=50.0))
    @settings(max_examples=20, deadline=None)
    def test_tables_always_normalized_for_any_alpha(self, toy_dataset_small, alpha):
        structure = DependencyStructure.from_parent_map({2: (0,)}, 4)
        tables = ParameterLearner(alpha=alpha).learn(
            toy_dataset_small, structure, np.random.default_rng(0)
        )
        for table in tables:
            assert np.allclose(table.table.sum(axis=1), 1.0)
