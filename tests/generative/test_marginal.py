"""Tests for the marginal-synthesis baseline."""

import numpy as np
import pytest

from repro.generative.marginal import MarginalSynthesizer
from repro.privacy.accountant import PrivacyAccountant
from repro.stats.contingency import marginal_distribution


class TestFit:
    def test_marginals_match_empirical_distribution(self, toy_dataset):
        model = MarginalSynthesizer.fit(toy_dataset, epsilon=None, alpha=1e-9)
        for index, attribute in enumerate(toy_dataset.schema):
            empirical = marginal_distribution(toy_dataset.column(index), attribute.cardinality)
            assert np.allclose(model.marginals[index], empirical, atol=1e-3)

    def test_dp_fit_perturbs_marginals(self, toy_dataset):
        exact = MarginalSynthesizer.fit(toy_dataset, epsilon=None, rng=np.random.default_rng(0))
        noisy = MarginalSynthesizer.fit(toy_dataset, epsilon=0.05, rng=np.random.default_rng(0))
        assert not np.allclose(exact.marginals[0], noisy.marginals[0])

    def test_dp_fit_records_budget(self, toy_dataset):
        accountant = PrivacyAccountant()
        MarginalSynthesizer.fit(
            toy_dataset, epsilon=0.5, accountant=accountant, rng=np.random.default_rng(0)
        )
        entry = accountant.entries[0]
        assert entry.label == "marginals/counts"
        assert entry.count == 4

    def test_empty_dataset_rejected(self, toy_schema):
        from repro.datasets.dataset import Dataset

        empty = Dataset(toy_schema, np.empty((0, 4), dtype=np.int64))
        with pytest.raises(ValueError):
            MarginalSynthesizer.fit(empty)

    def test_invalid_epsilon_rejected(self, toy_dataset):
        with pytest.raises(ValueError):
            MarginalSynthesizer.fit(toy_dataset, epsilon=0.0)

    def test_constructor_validates_marginals(self, toy_schema):
        bad = [np.array([0.5, 0.5])] * 4
        with pytest.raises(ValueError):
            MarginalSynthesizer(toy_schema, bad)
        with pytest.raises(ValueError):
            MarginalSynthesizer(toy_schema, [np.full(c, 0.5) for c in toy_schema.cardinalities])


class TestGeneration:
    def test_generate_ignores_the_seed(self, marginal_model, acs_dataset):
        rng_a = np.random.default_rng(0)
        rng_b = np.random.default_rng(0)
        first = marginal_model.generate(acs_dataset.record(0), rng_a)
        second = marginal_model.generate(acs_dataset.record(100), rng_b)
        assert np.array_equal(first, second)

    def test_generate_many_shape_and_domain(self, marginal_model, rng):
        records = marginal_model.generate_many(500, rng)
        assert records.shape == (500, len(marginal_model.schema))
        for col, attribute in enumerate(marginal_model.schema):
            assert records[:, col].max() < attribute.cardinality

    def test_generate_many_zero(self, marginal_model, rng):
        assert marginal_model.generate_many(0, rng).shape == (0, len(marginal_model.schema))

    def test_generate_many_negative_rejected(self, marginal_model, rng):
        with pytest.raises(ValueError):
            marginal_model.generate_many(-1, rng)

    def test_generated_marginals_converge_to_model_marginals(self, toy_dataset):
        model = MarginalSynthesizer.fit(toy_dataset, epsilon=None)
        records = model.generate_many(20_000, np.random.default_rng(0))
        empirical = marginal_distribution(records[:, 1], 3)
        assert np.allclose(empirical, model.marginals[1], atol=0.02)


class TestSeedProbabilities:
    def test_probability_is_product_of_marginals(self, marginal_model):
        candidate = np.zeros(len(marginal_model.schema), dtype=np.int64)
        expected = np.prod([m[0] for m in marginal_model.marginals])
        assert marginal_model.seed_probability(candidate, candidate) == pytest.approx(expected)

    def test_every_seed_is_equally_plausible(self, marginal_model, acs_dataset, rng):
        candidate = marginal_model.generate(acs_dataset.record(0), rng)
        probabilities = marginal_model.batch_seed_probabilities(acs_dataset.data[:200], candidate)
        assert np.allclose(probabilities, probabilities[0])

    def test_privacy_test_always_passes_for_marginal_model(self, marginal_model, acs_splits, rng):
        # Because the model ignores its seed, every record of the dataset is a
        # plausible seed and the deterministic test passes whenever |D| >= k
        # (Section 8 of the paper).
        from repro.privacy.plausible_deniability import (
            DeterministicPrivacyTest,
            PlausibleDeniabilityParams,
        )

        seeds = acs_splits.seeds
        candidate = marginal_model.generate(seeds.record(0), rng)
        probabilities = marginal_model.batch_seed_probabilities(seeds.data, candidate)
        test = DeterministicPrivacyTest(PlausibleDeniabilityParams(k=len(seeds), gamma=2.0))
        assert test(probabilities[0], probabilities, rng).passed

    def test_most_likely_value_is_marginal_mode(self, marginal_model):
        for index, marginal in enumerate(marginal_model.marginals):
            assert marginal_model.most_likely_value(np.empty(0), index) == int(np.argmax(marginal))
