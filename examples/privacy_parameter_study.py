"""Study the privacy parameters: Theorem 1 trade-offs and pass rates.

Scenario (Sections 2 and 6 of the paper): before releasing data, the data
holder must choose the plausible-deniability parameters (k, γ, ε0).  The
script shows the two sides of that decision:

* the formal (ε, δ)-differential-privacy guarantee each setting implies for a
  released record (Theorem 1), and
* the practical cost: the fraction of candidate synthetics that survive the
  privacy test (Figure 6), which determines how fast data can be generated.

Run with:  python examples/privacy_parameter_study.py
"""

import numpy as np

from repro.datasets import load_acs
from repro.datasets.splits import split_dataset
from repro.generative.builder import GenerativeModelSpec, fit_bayesian_network
from repro.privacy import (
    PlausibleDeniabilityParams,
    minimum_k_for_delta,
    theorem1_guarantee,
)
from repro.privacy.plausible_deniability import partition_numbers


def theorem1_table() -> None:
    print("Theorem 1 guarantees per released record (gamma=4, epsilon0=1):")
    print(f"  {'k':>5s}  {'epsilon':>8s}  {'delta':>10s}  {'t':>4s}")
    for k in (10, 25, 50, 100, 200):
        epsilon, delta, t = theorem1_guarantee(k=k, gamma=4.0, epsilon0=1.0)
        print(f"  {k:>5d}  {epsilon:>8.3f}  {delta:>10.2e}  {t:>4d}")
    needed = minimum_k_for_delta(delta_target=1e-9, epsilon0=1.0, t=20)
    print(f"for delta <= 1e-9 with t=20 one needs k >= {needed}")


def pass_rate_table() -> None:
    data = load_acs(num_records=60_000, seed=5)
    splits = split_dataset(data, rng=np.random.default_rng(0))
    rng = np.random.default_rng(1)
    gamma = 2.0
    print("\nprivacy-test pass rate (gamma=2, 300 candidates per cell):")
    header = "  omega   " + "".join(f"k={k:<6d}" for k in (25, 50, 100, 200))
    print(header)
    for omega in (7, 9, 11):
        model = fit_bayesian_network(
            splits.structure,
            splits.parameters,
            spec=GenerativeModelSpec(omega=omega, epsilon_structure=None, epsilon_parameters=None),
            rng=np.random.default_rng(2),
        )
        counts = []
        for _ in range(300):
            seed_index = int(rng.integers(len(splits.seeds)))
            seed = splits.seeds.record(seed_index)
            candidate = model.generate(seed, rng)
            probabilities = model.batch_seed_probabilities(splits.seeds.data, candidate)
            seed_probability = model.seed_probability(seed, candidate)
            seed_partition = partition_numbers(np.array([seed_probability]), gamma)[0]
            counts.append(int(np.sum(partition_numbers(probabilities, gamma) == seed_partition)))
        counts = np.array(counts)
        rates = "".join(f"{np.mean(counts >= k):<8.1%}" for k in (25, 50, 100, 200))
        print(f"  {omega:<8d}{rates}")

    params = PlausibleDeniabilityParams(k=50, gamma=2.0, epsilon0=1.0)
    print(f"\nexample parameter object: {params}")


def main() -> None:
    theorem1_table()
    pass_rate_table()


if __name__ == "__main__":
    main()
