"""Train income classifiers on synthetic data instead of the sensitive records.

Scenario (Section 6.3 of the paper): a data scientist needs to build an income
classifier but may not touch the raw census records.  The script compares
three options on the same held-out real test set:

* train on the real data (the non-private upper bound),
* train on the plausibly-deniable synthetic data released by the pipeline,
* train on the independent-marginals baseline.

It also contrasts the synthetic-data route with differentially-private
empirical risk minimization (Chaudhuri et al.) applied directly to the real
data, which is the comparison of Table 4.

Run with:  python examples/ml_training_on_synthetics.py
"""

import numpy as np

from repro.core import GenerationConfig, SynthesisPipeline
from repro.datasets import load_acs
from repro.ml.adaboost import AdaBoostM1Classifier
from repro.ml.dp_erm import DPTrainingConfig, objective_perturbation
from repro.ml.encoding import attribute_features, prepare_erm_data
from repro.ml.forest import RandomForestClassifier
from repro.ml.metrics import accuracy
from repro.ml.tree import DecisionTreeClassifier

TARGET = "WAGP"  # income class


def train_and_score(name, classifier, train, test) -> None:
    features, labels, _ = attribute_features(train, TARGET)
    test_features, test_labels, _ = attribute_features(test, TARGET)
    classifier.fit(features, labels)
    score = accuracy(classifier.predict(test_features), test_labels)
    print(f"  {name:<38s} accuracy {score:.1%}")


def main() -> None:
    data = load_acs(num_records=120_000, seed=3)
    config = GenerationConfig.paper_defaults(num_attributes=len(data.schema))
    pipeline = SynthesisPipeline(data, config, rng=np.random.default_rng(0))
    pipeline.fit()

    num_train = 3_000
    synthetic = pipeline.generate(num_records=num_train).released_dataset()
    marginals = pipeline.generate_marginals(num_train)
    reals = pipeline.splits.seeds.sample(num_train, np.random.default_rng(0))
    test = pipeline.splits.test

    print("tree-ensemble classifiers (income class, evaluated on real held-out data):")
    for dataset_name, dataset in (("reals", reals), ("synthetics", synthetic), ("marginals", marginals)):
        train_and_score(f"random forest on {dataset_name}",
                        RandomForestClassifier(num_trees=15, random_state=0), dataset, test)
        train_and_score(f"decision tree on {dataset_name}",
                        DecisionTreeClassifier(max_depth=10, random_state=0), dataset, test)
        train_and_score(f"AdaBoostM1 on {dataset_name}",
                        AdaBoostM1Classifier(num_rounds=20, random_state=0), dataset, test)

    # The DP-ERM alternative: noise the classifier itself instead of the data.
    print("\nlinear classifiers (Chaudhuri et al. preprocessing):")
    real_features, real_labels = prepare_erm_data(reals, TARGET)
    synth_features, synth_labels = prepare_erm_data(synthetic, TARGET)
    test_features, test_labels = prepare_erm_data(test, TARGET)

    erm_config = DPTrainingConfig(epsilon=1.0, regularization=1e-4, loss="logistic")
    dp_classifier = objective_perturbation(
        real_features, real_labels, erm_config, np.random.default_rng(1)
    )
    dp_predictions = np.sign(dp_classifier.decision_function(test_features))
    dp_accuracy = float(np.mean(dp_predictions == test_labels))
    print(f"  {'eps=1 DP logistic regression on reals':<38s} accuracy {dp_accuracy:.1%}")

    plain = erm_config.make_classifier()
    weights = plain.train_weights(synth_features, synth_labels)
    plain.set_weights(weights, classes=np.array([-1.0, 1.0]))
    synth_predictions = np.sign(plain.decision_function(test_features))
    synth_accuracy = float(np.mean(synth_predictions == test_labels))
    print(f"  {'plain logistic regression on synthetics':<38s} accuracy {synth_accuracy:.1%}")


if __name__ == "__main__":
    main()
