"""Quickstart: generate plausibly-deniable synthetic census records.

Runs the full pipeline of the paper on a small ACS-like dataset:

1. sample and clean the census-like input data,
2. fit the differentially-private Bayesian-network generative model,
3. generate candidate synthetics from random seeds and keep only those that
   pass the (k, γ) plausible-deniability privacy test,
4. report the privacy guarantees and a first look at the output.

Run with:  python examples/quickstart.py
"""

import numpy as np

from repro.core import GenerationConfig, SynthesisPipeline
from repro.datasets import load_acs


def main() -> None:
    # 1. Input data: a scaled-down stand-in for the 2013 ACS (see DESIGN.md).
    data = load_acs(num_records=40_000, seed=7)
    print(f"input dataset: {len(data)} records, {data.num_attributes} attributes")

    # 2-3. Fit the DP generative model and run Mechanism 1.
    config = GenerationConfig.paper_defaults(num_attributes=len(data.schema))
    pipeline = SynthesisPipeline(data, config, rng=np.random.default_rng(0))
    pipeline.fit()
    report = pipeline.generate(num_records=500)

    synthetic = report.released_dataset()
    print(f"released {len(synthetic)} synthetic records "
          f"({report.num_attempts} candidates proposed, "
          f"pass rate {report.pass_rate:.1%})")

    # 4. Privacy guarantees.
    model_epsilon, model_delta = pipeline.model_privacy_guarantee()
    release_epsilon, release_delta, t = pipeline.release_privacy_guarantee()
    print(f"model learning:   ({model_epsilon:.3f}, {model_delta:.2e})-differential privacy")
    print(f"record release:   ({release_epsilon:.3f}, {release_delta:.2e})-DP per record "
          f"(Theorem 1 with t={t}), plus ({config.privacy.k}, {config.privacy.gamma})-"
          f"plausible deniability")

    print("\nfirst five synthetic records:")
    for record in synthetic.decoded_records()[:5]:
        print("  ", dict(zip(data.schema.names, record)))


if __name__ == "__main__":
    main()
