"""End-to-end demo client for the ``repro serve`` JSON/HTTP API.

Connects to a running service (or spawns one with ``--spawn``), opens a
budgeted tenant session, streams synthetic rows from several concurrent
client threads, and finally demonstrates the budget governor by issuing a
deliberately over-budget request and checking the 409 refusal carries the
remaining budget.  Exits non-zero on any deviation, so the CI service-smoke
job uses it as its assertion driver:

    # terminal 1
    PYTHONPATH=src python -m repro.cli serve --scenario toy-correlated \
        --port 8765 --audit-log audit.jsonl

    # terminal 2
    PYTHONPATH=src python examples/service_client.py \
        --base-url http://127.0.0.1:8765 --clients 2 --rows 4 --expect-refusal

or, self-contained:

    PYTHONPATH=src python examples/service_client.py --spawn
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request


def get(url: str):
    try:
        with urllib.request.urlopen(url, timeout=30) as response:
            return response.status, json.load(response)
    except urllib.error.HTTPError as error:
        return error.code, json.load(error)


def post(url: str, body: dict):
    request = urllib.request.Request(
        url,
        data=json.dumps(body).encode(),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=300) as response:
            return response.status, json.load(response)
    except urllib.error.HTTPError as error:
        return error.code, json.load(error)


def wait_for_health(base_url: str, timeout_seconds: float = 120.0) -> dict:
    deadline = time.monotonic() + timeout_seconds
    last_error = None
    while time.monotonic() < deadline:
        try:
            status, payload = get(f"{base_url}/healthz")
            if status == 200:
                return payload
        except (urllib.error.URLError, ConnectionError, OSError) as exc:
            last_error = exc
        time.sleep(0.5)
    raise SystemExit(f"service at {base_url} never became healthy: {last_error}")


def run_clients(base_url: str, session_id: str, clients: int, rows: int) -> int:
    """``clients`` concurrent threads each request ``rows`` rows; returns total released."""
    released = []
    errors = []

    def client(index: int) -> None:
        # An explicit seed makes the request replayable bit-for-bit.
        status, payload = post(
            f"{base_url}/generate",
            {"session": session_id, "rows": rows, "seed": 1000 + index},
        )
        if status != 200:
            errors.append((index, status, payload))
            return
        released.append(payload["released_rows"])
        print(
            f"  client {index}: released {payload['released_rows']}/{rows} rows "
            f"(pass rate {payload['pass_rate']:.1%}), e.g. {payload['rows'][:1]}"
        )

    threads = [threading.Thread(target=client, args=(i,)) for i in range(clients)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    for index, status, payload in errors:
        print(f"  client {index} FAILED: HTTP {status} {payload}", file=sys.stderr)
    if errors:
        raise SystemExit(1)
    return sum(released)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--base-url", default="http://127.0.0.1:8765")
    parser.add_argument("--clients", type=int, default=2, help="concurrent clients")
    parser.add_argument("--rows", type=int, default=4, help="rows per client request")
    parser.add_argument(
        "--expect-refusal",
        action="store_true",
        help="after the clients, issue an over-budget request and require a "
        "409 refusal carrying the budget remainder",
    )
    parser.add_argument(
        "--spawn",
        action="store_true",
        help="spawn a local 'repro serve --scenario toy-correlated' for the demo",
    )
    args = parser.parse_args(argv)

    server = None
    try:
        if args.spawn:
            server = subprocess.Popen(
                [
                    sys.executable, "-m", "repro.cli", "serve",
                    "--scenario", "toy-correlated",
                    "--port", args.base_url.rsplit(":", 1)[1],
                ],
            )
        health = wait_for_health(args.base_url)
        print(f"service healthy: {health}")

        _status, models = get(f"{args.base_url}/models")
        model = models["models"][0]
        print(
            f"published model {model['name']!r}: k={model['k']}, per-row cost "
            f"(ε={model['per_row_cost']['epsilon']:.4g}, "
            f"δ={model['per_row_cost']['delta']:.3g})"
        )

        # Budget sized so the concurrent clients fit but a repeat of the same
        # load cannot: clients * rows releases at most that many rows.
        budget_rows = args.clients * args.rows
        status, session = post(
            f"{args.base_url}/sessions",
            {
                "model": model["model_id"],
                "tenant": "demo",
                "budget": {"max_rows": budget_rows},
            },
        )
        if status != 201:
            print(f"session creation failed: HTTP {status} {session}", file=sys.stderr)
            return 1
        session_id = session["session_id"]
        print(f"session {session_id}: budget {session['budget']}")

        print(f"running {args.clients} concurrent clients x {args.rows} rows:")
        total = run_clients(args.base_url, session_id, args.clients, args.rows)
        print(f"total released: {total}")

        _status, budget = get(f"{args.base_url}/budget?session={session_id}")
        if budget["spent"]["rows"] != total:
            print(
                f"FAIL: budget reports {budget['spent']['rows']} spent rows, "
                f"clients saw {total}",
                file=sys.stderr,
            )
            return 1
        print(f"budget after serving: {budget['remaining']}")

        if args.expect_refusal:
            over = budget_rows + 1  # cannot fit no matter what was released
            status, refusal = post(
                f"{args.base_url}/generate",
                {"session": session_id, "rows": over},
            )
            if status != 409 or refusal.get("code") != "budget_exceeded":
                print(
                    f"FAIL: over-budget request returned HTTP {status} {refusal}, "
                    "expected a 409 budget_exceeded refusal",
                    file=sys.stderr,
                )
                return 1
            if "remaining" not in refusal:
                print("FAIL: refusal carries no budget remainder", file=sys.stderr)
                return 1
            print(f"over-budget request correctly refused: {refusal['remaining']}")

        print("OK")
        return 0
    finally:
        if server is not None:
            server.terminate()
            server.wait(timeout=30)


if __name__ == "__main__":
    sys.exit(main())
