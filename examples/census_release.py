"""Census data release: produce a shareable synthetic CSV and check its utility.

Scenario (Section 1 of the paper): a statistical agency wants to publish full
census-style microdata records for researchers without exposing respondents.
The script:

1. fits the DP generative model and generates a synthetic dataset large enough
   to be useful for downstream analysis,
2. writes it to ``census_synthetic.csv`` in the same format as the input,
3. compares the statistical fidelity of the release against both the real data
   and the independent-marginals baseline (per-attribute and pairwise total
   variation distance),
4. verifies the release with the distinguishing game: can a random forest tell
   the synthetic records from real ones?

Run with:  python examples/census_release.py
"""

from pathlib import Path

import numpy as np

from repro.core import GenerationConfig, SynthesisPipeline
from repro.datasets import Dataset, load_acs
from repro.ml.evaluation import distinguishing_game
from repro.ml.forest import RandomForestClassifier
from repro.stats.distance import pairwise_attribute_distances, single_attribute_distances

OUTPUT_PATH = Path("census_synthetic.csv")


def fidelity_report(name: str, reference: Dataset, candidate: Dataset) -> None:
    cardinalities = reference.schema.cardinalities
    single = single_attribute_distances(reference.data, candidate.data, cardinalities)
    pairs = list(
        pairwise_attribute_distances(reference.data, candidate.data, cardinalities).values()
    )
    print(f"  {name:<12s}  single-attribute TVD {np.mean(single):.4f}   "
          f"pairwise TVD {np.mean(pairs):.4f}")


def main() -> None:
    data = load_acs(num_records=120_000, seed=11)
    print(f"input dataset: {len(data)} records")

    config = GenerationConfig.paper_defaults(num_attributes=len(data.schema))
    pipeline = SynthesisPipeline(data, config, rng=np.random.default_rng(0))
    pipeline.fit()

    num_release = 2_000
    report = pipeline.generate(num_records=num_release)
    synthetic = report.released_dataset()
    synthetic.to_csv(OUTPUT_PATH)
    print(f"released {len(synthetic)} records to {OUTPUT_PATH} "
          f"(pass rate {report.pass_rate:.1%})")

    # Utility: how close are the released records to the real distribution?
    reference = pipeline.splits.test.sample(num_release, np.random.default_rng(0))
    holdout = pipeline.splits.seeds.sample(num_release, np.random.default_rng(1))
    marginals = pipeline.generate_marginals(num_release)
    print("statistical fidelity vs a held-out real sample:")
    fidelity_report("reals", reference, holdout)
    fidelity_report("synthetics", reference, synthetic)
    fidelity_report("marginals", reference, marginals)

    # Distinguishing game: lower accuracy = harder to tell synthetics from reals.
    adversary_accuracy = distinguishing_game(
        RandomForestClassifier(num_trees=15, max_depth=12, random_state=0),
        real=holdout,
        synthetic=synthetic,
        train_size_per_class=min(1_000, len(synthetic) // 2),
        test_size_per_class=min(500, len(synthetic) // 4),
        rng=np.random.default_rng(2),
    )
    print(f"distinguishing-game accuracy of a random forest: {adversary_accuracy:.1%} "
          "(50% would be perfect indistinguishability)")


if __name__ == "__main__":
    main()
