"""Lint-throughput benchmark: the static checker over the full source tree.

``repro lint`` runs as a blocking CI gate and as a pre-commit habit, so its
cost has to stay trivially small next to the test suite it guards.  This
benchmark times :func:`repro.analysis.lint_paths` (every rule family, the
same entry point the CLI uses) over ``src/repro`` and asserts:

* the tree lints clean under the committed baseline — the benchmark doubles
  as an end-to-end run of the exact configuration CI enforces;
* throughput stays above a deliberately conservative floor
  (``FLOOR_FILES_PER_SECOND``), so an accidentally quadratic rule shows up
  as a perf regression here before it shows up as a slow CI queue.

Run standalone (writes ``benchmarks/results/bench_lint.json``)::

    PYTHONPATH=src python benchmarks/bench_lint.py [--smoke]

``--smoke`` does a single timed pass (CI); the default is best-of-3.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC_TREE = REPO_ROOT / "src" / "repro"
BASELINE = REPO_ROOT / "lint-baseline.json"

#: Conservative floor for noisy shared runners; a laptop does ~10x this.
FLOOR_FILES_PER_SECOND = 15.0


def run_benchmark(repeats: int) -> dict:
    from repro.analysis import lint_paths
    from repro.analysis.baseline import Baseline

    best = None
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = lint_paths([SRC_TREE], root=REPO_ROOT)
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    Baseline.load(BASELINE).apply(result)
    return {
        "wall_time": best,
        "files": result.files_scanned,
        "files_per_second": result.files_scanned / best,
        "findings_after_baseline": len(result.findings),
        "inline_suppressed": result.inline_suppressed,
        "baseline_suppressed": result.baseline_suppressed,
        "parse_errors": len(result.parse_errors),
    }


def _record_json(stats: dict, repeats: int) -> None:
    sys.path.insert(0, str(Path(__file__).parent))
    from conftest import write_benchmark_json

    write_benchmark_json(
        "bench_lint",
        params={"files": stats["files"], "repeats": repeats},
        wall_time=stats["wall_time"],
        throughput=stats["files_per_second"],  # files/second over all rules
        extra={
            "findings_after_baseline": stats["findings_after_baseline"],
            "inline_suppressed": stats["inline_suppressed"],
            "baseline_suppressed": stats["baseline_suppressed"],
        },
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="single timed pass (CI mode)"
    )
    args = parser.parse_args(argv)
    repeats = 1 if args.smoke else 3

    stats = run_benchmark(repeats)
    _record_json(stats, repeats)
    print(
        f"linted {stats['files']} files in {stats['wall_time']:.3f}s "
        f"({stats['files_per_second']:.0f} files/s, best of {repeats}); "
        f"{stats['inline_suppressed']} inline + "
        f"{stats['baseline_suppressed']} baselined suppression(s)"
    )
    if stats["parse_errors"] or stats["findings_after_baseline"]:
        print(
            f"FAIL: tree is not clean ({stats['findings_after_baseline']} "
            f"finding(s), {stats['parse_errors']} parse error(s))",
            file=sys.stderr,
        )
        return 1
    if stats["files_per_second"] < FLOOR_FILES_PER_SECOND:
        print(
            f"FAIL: {stats['files_per_second']:.0f} files/s is below the "
            f"{FLOOR_FILES_PER_SECOND:.0f} files/s floor",
            file=sys.stderr,
        )
        return 1
    print(f"OK: clean tree, throughput above {FLOOR_FILES_PER_SECOND:.0f} files/s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
