"""Figure 5: generation performance (model learning vs synthesis time)."""

from conftest import run_once

from repro.experiments.performance import run_parallel_scaling, run_performance_measurement


def test_figure5_generation_performance(benchmark, context, record_result):
    result = run_once(
        benchmark,
        lambda: run_performance_measurement(context, checkpoints=(250, 500, 1_000, 2_000)),
    )
    record_result("figure5_performance.txt", result)

    produced = result.column("synthetics produced")
    synthesis = result.column("synthesis (s)")
    rates = result.column("records / second")

    # Shape check (paper, Figure 5): synthesis time grows roughly linearly in
    # the number of records (constant per-record cost), and the one-off model
    # learning cost does not grow with the number of synthetics.
    assert produced == sorted(produced)
    assert synthesis == sorted(synthesis)
    assert min(rates) > 0.3 * max(rates)


def test_figure5_parallel_scaling(benchmark, context, record_result):
    result = run_once(
        benchmark,
        lambda: run_parallel_scaling(context, num_attempts=600, worker_counts=(1, 2)),
    )
    record_result("figure5_parallel_scaling.txt", result)

    attempts = result.column("attempts")
    assert all(count == 600 for count in attempts)
