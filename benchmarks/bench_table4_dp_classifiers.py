"""Table 4: DP-ERM classifiers on real data vs plain classifiers on synthetics."""

from conftest import run_once

from repro.experiments.dp_classifier_comparison import run_dp_classifier_comparison


def test_table4_dp_classifier_comparison(benchmark, context, record_result):
    result = run_once(benchmark, lambda: run_dp_classifier_comparison(context, epsilon=1.0))
    record_result("table4_dp_classifiers.txt", result)

    non_private = result.row_by_key("non-private (reals)")
    objective = result.row_by_key("objective perturbation (reals)")
    marginals = result.row_by_key("marginals")
    synthetics = result.row_by_key("omega=9")

    # Shape check (paper, Table 4): classifiers trained on the synthetics are
    # competitive with the eps=1 DP-ERM classifiers trained on real data, and
    # both clearly beat the marginals baseline; the non-private classifier on
    # reals stays the upper bound.
    lr, svm = 1, 2
    assert non_private[lr] >= synthetics[lr] - 0.05
    assert synthetics[lr] > marginals[lr] - 0.02
    assert synthetics[lr] >= objective[lr] - 0.10
    assert synthetics[svm] >= objective[svm] - 0.10
