"""Figure 6: privacy-test pass rate as a function of k and ω (γ = 2)."""

import numpy as np
from conftest import run_once

from repro.experiments.pass_rate import run_pass_rate_sweep


def test_figure6_pass_rate_sweep(benchmark, context, record_result):
    result = run_once(
        benchmark,
        lambda: run_pass_rate_sweep(
            context,
            k_values=(10, 25, 50, 100, 150, 250),
            omegas=(7, 8, 9, 10, (5, 6, 7, 8, 9, 10, 11)),
            gamma=2.0,
            num_candidates=300,
        ),
    )
    record_result("figure6_pass_rate.txt", result)

    k_values = result.column("k")
    omega10 = np.array(result.column("omega=10"), dtype=float)
    omega7 = np.array(result.column("omega=7"), dtype=float)
    mixed = np.array(result.column("omega in [5-11]"), dtype=float)

    # Shape checks (paper, Figure 6):
    # 1. the pass rate is non-increasing in k for every omega,
    for column in (omega7, omega10, mixed):
        assert np.all(np.diff(column) <= 1e-9)
    # 2. larger omega admits more plausible seeds, so omega=10 dominates omega=7,
    assert np.all(omega10 >= omega7 - 1e-9)
    # 3. even at strict settings (k=100) a substantial fraction still passes
    #    for high omega, which is what makes large-scale synthesis practical.
    k_index = k_values.index(100)
    assert omega10[k_index] > 0.5
