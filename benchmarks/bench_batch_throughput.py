"""Batched vs single-record Mechanism 1 throughput on the ACS workload.

The paper's headline scalability claim (Section 5, Figure 5) is that
seed-based synthesis is embarrassingly parallel and can emit millions of
records.  The batched synthesis engine pushes whole blocks of seeds through
vectorized generation and one (candidates x seeds) probability-matrix pass,
amortizing the per-record Python overhead of the reference loop.  This
benchmark measures candidate throughput for both paths on the same fitted
model and asserts:

* the batched path is at least 10x faster per candidate, and
* its privacy-test pass rate matches the reference path within sampling noise
  (the batched engine is a pure performance optimization).

Scale knobs (environment variables):

* ``REPRO_BENCH_BATCH_RAW_RECORDS`` (default 40000) — raw ACS-like records;
* ``REPRO_BENCH_BATCH_SINGLE_ATTEMPTS`` (default 300) — reference-loop candidates;
* ``REPRO_BENCH_BATCH_BATCHED_ATTEMPTS`` (default 3000) — batched-path candidates.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest
from conftest import run_once

from repro.core.mechanism import SynthesisMechanism
from repro.datasets.acs import load_acs
from repro.datasets.splits import split_dataset
from repro.experiments.harness import ExperimentResult
from repro.generative.builder import GenerativeModelSpec, fit_bayesian_network
from repro.privacy.plausible_deniability import PlausibleDeniabilityParams


def _int_env(name: str, default: int) -> int:
    value = os.environ.get(name)
    return int(value) if value else default


RAW_RECORDS = _int_env("REPRO_BENCH_BATCH_RAW_RECORDS", 40_000)
SINGLE_ATTEMPTS = _int_env("REPRO_BENCH_BATCH_SINGLE_ATTEMPTS", 300)
BATCHED_ATTEMPTS = _int_env("REPRO_BENCH_BATCH_BATCHED_ATTEMPTS", 3_000)
BATCH_SIZE = 256


@pytest.fixture(scope="module")
def batch_mechanism() -> SynthesisMechanism:
    """Mechanism 1 on the ACS workload (omega=9, gamma=4, deterministic test).

    k is raised above the paper's 50 so the privacy test actually rejects a
    fraction of the candidates at this scaled-down seed-set size — with the
    paper's k every candidate passes and the pass-rate comparison would be
    vacuous.  The deterministic test keeps that comparison free of threshold
    noise; the generation and probability work being timed is identical for
    the randomized test.
    """
    dataset = load_acs(num_records=RAW_RECORDS, seed=11)
    splits = split_dataset(dataset, rng=np.random.default_rng(17))
    spec = GenerativeModelSpec(omega=9, epsilon_structure=None, epsilon_parameters=None)
    model = fit_bayesian_network(
        splits.structure, splits.parameters, spec=spec, rng=np.random.default_rng(18)
    )
    params = PlausibleDeniabilityParams(k=200, gamma=4.0)
    return SynthesisMechanism(model, splits.seeds, params)


def _run_comparison(mechanism: SynthesisMechanism) -> ExperimentResult:
    start = time.perf_counter()
    single = mechanism.run_attempts(SINGLE_ATTEMPTS, np.random.default_rng(31))
    single_seconds = time.perf_counter() - start

    start = time.perf_counter()
    batched = mechanism.run_attempts_batched(
        BATCHED_ATTEMPTS, np.random.default_rng(32), batch_size=BATCH_SIZE
    )
    batched_seconds = time.perf_counter() - start

    result = ExperimentResult(
        name="Batched Mechanism 1 throughput (ACS workload, omega=9, k=200, gamma=4)",
        headers=["path", "attempts", "seconds", "candidates / second", "pass rate"],
        notes=f"seed records: {len(mechanism.seed_dataset)}, batch size: {BATCH_SIZE}",
    )
    result.add_row(
        "single-record loop",
        single.num_attempts,
        single_seconds,
        single.num_attempts / single_seconds,
        single.pass_rate,
    )
    result.add_row(
        "batched engine",
        batched.num_attempts,
        batched_seconds,
        batched.num_attempts / batched_seconds,
        batched.pass_rate,
    )
    return result


def test_batched_throughput_and_pass_rate(benchmark, batch_mechanism, record_result):
    result = run_once(benchmark, lambda: _run_comparison(batch_mechanism))
    record_result("batch_throughput.txt", result)

    single_rate, batched_rate = result.column("candidates / second")
    single_pass, batched_pass = result.column("pass rate")

    assert batched_rate >= 10.0 * single_rate, (
        f"batched path must be >= 10x faster: "
        f"{batched_rate:.0f} vs {single_rate:.0f} candidates/s"
    )

    # Two-proportion comparison: the batched engine draws i.i.d. candidates
    # from the same distribution, so the pass rates differ only by noise.
    pooled = (
        single_pass * SINGLE_ATTEMPTS + batched_pass * BATCHED_ATTEMPTS
    ) / (SINGLE_ATTEMPTS + BATCHED_ATTEMPTS)
    sigma = np.sqrt(
        max(pooled * (1.0 - pooled), 1e-4) * (1.0 / SINGLE_ATTEMPTS + 1.0 / BATCHED_ATTEMPTS)
    )
    assert abs(single_pass - batched_pass) < 5.0 * sigma + 1e-9, (
        f"pass rates diverge beyond noise: {single_pass:.3f} vs {batched_pass:.3f} "
        f"(sigma {sigma:.4f})"
    )
