"""Service throughput: concurrent clients vs released rows per second.

Drives the ``repro.service`` stack — registry, budgeted sessions, folding
scheduler, pooled engines — with N concurrent client threads, each issuing a
stream of fixed-seed ``/generate`` requests, and measures end-to-end released
rows/sec at each concurrency level.  Because every request carries an
explicit seed, the rows a given request releases must be bit-identical at
every client count; the benchmark asserts that, so the throughput column
measures scheduling, never nondeterminism.  The scheduler's *fold factor*
(mean requests per fused engine job) is recorded alongside throughput so
scaling wins are attributable to request folding.

Scaling gates: 4 clients must reach ≥ 1.5× and 8 clients ≥ 3.0× the
single-client rows/s — enforced only when the host can actually run enough
engine workers in parallel (``min(clients, workers, cores)``); on a 1-core
container the run is compute-bound, the gates are skipped and the skip is
recorded in the JSON rather than silently passing.

Run standalone (``PYTHONPATH=src python benchmarks/bench_service_throughput.py
[--smoke]``) or via pytest.  Results land in ``benchmarks/results/`` as both
the human-readable table and the shared machine-readable JSON record.

Scale knobs (environment variables):

* ``REPRO_BENCH_SERVICE_RECORDS`` (default 2000, smoke 600) — input records;
* ``REPRO_BENCH_SERVICE_REQUESTS`` (default 8, smoke 4) — requests per client;
* ``REPRO_BENCH_SERVICE_ROWS`` (default 16, smoke 8) — rows per request;
* ``REPRO_BENCH_SERVICE_WORKERS`` (default ``min(4, cores)``) — engine worker
  processes per pooled engine (1 = the in-process path);
* ``REPRO_BENCH_SERVICE_ENGINES`` (default 1) — engines per model;
* ``REPRO_BENCH_SERVICE_SMOKE`` — any non-empty value selects smoke scale.
"""

from __future__ import annotations

import argparse
import os
import sys
import threading
import time
from pathlib import Path

import numpy as np

from repro.experiments.harness import ExperimentResult
from repro.service import ModelRegistry, ServiceApp
from repro.testing.scenarios import correlated_toy_matrix, get_scenario, toy_schema

CLIENT_COUNTS = (1, 2, 4, 8)
FULL_RECORDS = 2_000
FULL_REQUESTS = 8
FULL_ROWS = 16
SMOKE_RECORDS = 600
SMOKE_REQUESTS = 4
SMOKE_ROWS = 8

#: Scaling-efficiency gates: at ``clients`` clients, rows/s must reach
#: ``floor`` × the single-client rows/s.  A gate only binds when the host can
#: run at least ``need`` engine workers truly in parallel — on fewer cores the
#: round is compute-bound and the gate is recorded as skipped, not passed.
SCALING_GATES = (
    {"clients": 4, "floor": 1.5, "need": 2},
    {"clients": 8, "floor": 3.0, "need": 4},
)


def _int_env(name: str, default: int) -> int:
    value = os.environ.get(name)
    return int(value) if value else default


def _smoke_env() -> bool:
    return bool(os.environ.get("REPRO_BENCH_SERVICE_SMOKE"))


def _cores() -> int:
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


def _scale() -> tuple[int, int, int]:
    smoke = _smoke_env()
    return (
        _int_env("REPRO_BENCH_SERVICE_RECORDS", SMOKE_RECORDS if smoke else FULL_RECORDS),
        _int_env("REPRO_BENCH_SERVICE_REQUESTS", SMOKE_REQUESTS if smoke else FULL_REQUESTS),
        _int_env("REPRO_BENCH_SERVICE_ROWS", SMOKE_ROWS if smoke else FULL_ROWS),
    )


def _workers() -> int:
    return _int_env("REPRO_BENCH_SERVICE_WORKERS", min(4, _cores()))


def _engines_per_model() -> int:
    return _int_env("REPRO_BENCH_SERVICE_ENGINES", 1)


def _build_app(
    num_records: int,
    journal: str | None = None,
    workers: int = 1,
    engines_per_model: int = 1,
) -> tuple[ServiceApp, str]:
    """A service with one published toy-correlated model at benchmark scale.

    ``at_scale`` retunes k for the requested size: the plausible-seed bucket
    populations stop growing with n once the learned chain resolves the
    generating process, so the native k = 80 would reject every candidate
    beyond ~1500 records.
    """
    from repro.datasets.dataset import Dataset

    scenario = get_scenario("toy-correlated").at_scale(num_records)
    dataset = Dataset(
        toy_schema(), correlated_toy_matrix(num_records, np.random.default_rng(11))
    )
    app = ServiceApp(
        ModelRegistry(),
        num_workers=workers,
        journal=journal,
        engines_per_model=engines_per_model,
    )
    app.publish_model("bench", dataset, scenario.config(), seed=2)
    return app, "bench"


def _serve_round(
    app: ServiceApp, clients: int, requests_per_client: int, rows: int
) -> tuple[float, int, dict[str, np.ndarray]]:
    """One concurrency level: C client threads, fixed request seeds."""
    sessions = [
        app.create_session("bench", tenant=f"client{index}")["session_id"]
        for index in range(clients)
    ]
    released: dict[str, np.ndarray] = {}
    failures: list[BaseException] = []
    lock = threading.Lock()

    def _client(client_index: int) -> None:
        try:
            for request_index in range(requests_per_client):
                # The seed identifies the request, not the client, so every
                # concurrency level replays the identical request set.
                seed = 1_000 + client_index * requests_per_client + request_index
                record = app.generate(sessions[client_index], rows, seed=seed)
                with lock:
                    released[str(seed)] = record.report.released_dataset().data
        except BaseException as exc:  # pragma: no cover - surfaced below
            with lock:
                failures.append(exc)

    threads = [
        threading.Thread(target=_client, args=(index,)) for index in range(clients)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    if failures:
        raise failures[0]
    total_rows = sum(arr.shape[0] for arr in released.values())
    return elapsed, total_rows, released


def run_benchmark(
    num_records: int,
    requests_per_client: int,
    rows: int,
    *,
    client_counts: tuple[int, ...] = CLIENT_COUNTS,
    journal: str | None = None,
    workers: int = 1,
    engines_per_model: int = 1,
) -> tuple[ExperimentResult, dict[int, float], dict]:
    app, _name = _build_app(
        num_records,
        journal=journal,
        workers=workers,
        engines_per_model=engines_per_model,
    )
    mode = "journal + supervision" if journal else "baseline"
    result = ExperimentResult(
        name=(
            f"Service throughput (toy-correlated, n={num_records}, "
            f"{requests_per_client} requests x {rows} rows per client, "
            f"{workers} worker(s), {mode})"
        ),
        headers=["clients", "requests", "released rows", "seconds", "rows / second"],
    )
    throughput: dict[int, float] = {}
    reference: dict[str, np.ndarray] | None = None
    try:
        # Warmup: build the pooled engine and spawn its workers outside the
        # timed rounds, so round 1 measures serving, not process startup.
        warmup = app.create_session("bench", tenant="warmup")["session_id"]
        app.generate(warmup, rows, seed=999)
        for clients in client_counts:
            elapsed, total_rows, released = _serve_round(
                app, clients, requests_per_client, rows
            )
            if reference is None:
                reference = released
            else:
                for seed, rows_array in released.items():
                    if seed in reference and not np.array_equal(
                        reference[seed], rows_array
                    ):
                        raise AssertionError(
                            f"request seed {seed} released different rows at "
                            f"{clients} clients than at {client_counts[0]}"
                        )
            throughput[clients] = total_rows / elapsed if elapsed > 0 else 0.0
            result.add_row(
                clients,
                clients * requests_per_client,
                total_rows,
                elapsed,
                throughput[clients],
            )
        stats = app.scheduler.stats()
        fold = {
            "fold_factor": stats.fold_factor,
            "batches": stats.batches,
            "max_batch": stats.max_batch,
            "coalesced": stats.coalesced,
            "engine_busy_seconds": stats.engine_busy_seconds,
        }
        base = throughput.get(client_counts[0], 0.0)
        scaling = {
            clients: (throughput[clients] / base if base > 0 else 0.0)
            for clients in client_counts
        }
        result.notes = (
            f"scheduler: {stats.batches} folds for {stats.completed} requests, "
            f"fold factor {stats.fold_factor:.2f}, largest fold {stats.max_batch}, "
            f"{stats.coalesced} requests coalesced; scaling vs 1 client: "
            + ", ".join(f"{c}c={scaling[c]:.2f}x" for c in client_counts)
            + "; identical per-seed rows at every client count"
        )
        fold["scaling"] = scaling
    finally:
        app.close()
    return result, throughput, fold


def check_scaling(
    throughput: dict[int, float], workers: int
) -> list[str]:
    """Enforce the scaling gates the host can honestly support.

    Returns the human-readable skip reasons for gates this host cannot bind
    (too few cores or workers for real parallelism) so they are reported,
    never silently dropped.  Raises :class:`AssertionError` on a bound gate
    whose floor is missed.
    """
    skipped: list[str] = []
    cores = _cores()
    base = throughput.get(1)
    if not base:
        return ["no single-client round; scaling gates not applicable"]
    for gate in SCALING_GATES:
        clients, floor, need = gate["clients"], gate["floor"], gate["need"]
        if clients not in throughput:
            skipped.append(f"{clients}-client gate: round not run")
            continue
        parallelism = min(clients, workers, cores)
        if parallelism < need:
            skipped.append(
                f"{clients}-client gate ({floor:.1f}x) skipped: only "
                f"{parallelism} parallel worker(s) available "
                f"(workers={workers}, cores={cores}; need {need})"
            )
            continue
        ratio = throughput[clients] / base
        if ratio < floor:
            raise AssertionError(
                f"{clients}-client throughput is {throughput[clients]:.1f} "
                f"rows/s = {ratio:.2f}x single-client ({base:.1f} rows/s); "
                f"the scaling gate requires >= {floor:.1f}x"
            )
    return skipped


#: The supervised round runs the endpoints of the client grid; its floor is
#: deliberately soft (journal writes are one buffered line per budget event)
#: so only a real regression — not CI noise — fails the gate.
SUPERVISED_CLIENTS = (1, 4)
SUPERVISED_FLOOR = 0.5


def _fold_extra(fold: dict, workers: int, gates_skipped: list[str]) -> dict:
    """The fold/scaling block shared by the benchmark JSON records."""
    return {
        "fold_factor": fold.get("fold_factor"),
        "max_fold": fold.get("max_batch"),
        "coalesced": fold.get("coalesced"),
        "scaling_efficiency": {
            str(clients): ratio for clients, ratio in fold.get("scaling", {}).items()
        },
        "workers": workers,
        "cores": _cores(),
        "gates_skipped": gates_skipped,
    }


def _record_json(
    num_records, requests_per_client, rows, throughput, wall_time,
    name="bench_service_throughput", client_counts=CLIENT_COUNTS, extra=None,
) -> None:
    from conftest import write_benchmark_json

    write_benchmark_json(
        name,
        params={
            "records": num_records,
            "requests_per_client": requests_per_client,
            "rows_per_request": rows,
            "client_counts": list(client_counts),
        },
        wall_time=wall_time,
        throughput=max(throughput.values()) if throughput else None,
        extra={
            "rows_per_second": {str(c): t for c, t in throughput.items()},
            **(extra or {}),
        },
    )


def _run_supervised_round(
    num_records: int, requests_per_client: int, rows: int, workers: int
) -> tuple[ExperimentResult, dict[int, float], dict]:
    """The fault-tolerance configuration: durable budget journal enabled."""
    import tempfile

    with tempfile.TemporaryDirectory(prefix="repro-bench-journal-") as tmp:
        return run_benchmark(
            num_records,
            requests_per_client,
            rows,
            client_counts=SUPERVISED_CLIENTS,
            journal=str(Path(tmp) / "journal.jsonl"),
            workers=workers,
            engines_per_model=_engines_per_model(),
        )


def _check_no_regression(
    baseline: dict[int, float], supervised: dict[int, float]
) -> None:
    for clients in SUPERVISED_CLIENTS:
        floor = SUPERVISED_FLOOR * baseline[clients]
        if supervised[clients] < floor:
            raise AssertionError(
                f"journal+supervision throughput at {clients} client(s) is "
                f"{supervised[clients]:.1f} rows/s, below {SUPERVISED_FLOOR:.0%} "
                f"of the {baseline[clients]:.1f} rows/s baseline"
            )


def test_service_throughput(record_result):
    num_records, requests_per_client, rows = _scale()
    workers = _workers()
    start = time.perf_counter()
    result, throughput, fold = run_benchmark(
        num_records,
        requests_per_client,
        rows,
        workers=workers,
        engines_per_model=_engines_per_model(),
    )
    wall_time = time.perf_counter() - start
    skipped = check_scaling(throughput, workers)
    record_result("service_throughput.txt", result)
    _record_json(
        num_records, requests_per_client, rows, throughput, wall_time,
        extra=_fold_extra(fold, workers, skipped),
    )
    assert all(value > 0 for value in throughput.values())

    start = time.perf_counter()
    supervised_result, supervised, supervised_fold = _run_supervised_round(
        num_records, requests_per_client, rows, workers
    )
    supervised_wall = time.perf_counter() - start
    record_result("service_throughput_supervised.txt", supervised_result)
    _record_json(
        num_records, requests_per_client, rows, supervised, supervised_wall,
        name="bench_service_throughput_supervised",
        client_counts=SUPERVISED_CLIENTS,
        extra={
            **_fold_extra(supervised_fold, workers, []),
            "baseline_rows_per_second": {
                str(c): throughput[c] for c in SUPERVISED_CLIENTS
            },
        },
    )
    _check_no_regression(throughput, supervised)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="tiny sizes")
    args = parser.parse_args(argv)
    if args.smoke:
        os.environ["REPRO_BENCH_SERVICE_SMOKE"] = "1"

    num_records, requests_per_client, rows = _scale()
    workers = _workers()
    start = time.perf_counter()
    result, throughput, fold = run_benchmark(
        num_records,
        requests_per_client,
        rows,
        workers=workers,
        engines_per_model=_engines_per_model(),
    )
    wall_time = time.perf_counter() - start
    print(result.to_text())
    try:
        skipped = check_scaling(throughput, workers)
    except AssertionError as exc:
        print(f"FAIL: {exc}", file=sys.stderr)
        return 1
    for reason in skipped:
        print(f"note: {reason}")
    results_dir = Path(__file__).parent / "results"
    results_dir.mkdir(exist_ok=True)
    (results_dir / "service_throughput.txt").write_text(result.to_text() + "\n")
    _record_json(
        num_records, requests_per_client, rows, throughput, wall_time,
        extra=_fold_extra(fold, workers, skipped),
    )
    if not all(value > 0 for value in throughput.values()):
        print("FAIL: zero throughput at some client count", file=sys.stderr)
        return 1

    start = time.perf_counter()
    supervised_result, supervised, supervised_fold = _run_supervised_round(
        num_records, requests_per_client, rows, workers
    )
    supervised_wall = time.perf_counter() - start
    print(supervised_result.to_text())
    (results_dir / "service_throughput_supervised.txt").write_text(
        supervised_result.to_text() + "\n"
    )
    _record_json(
        num_records, requests_per_client, rows, supervised, supervised_wall,
        name="bench_service_throughput_supervised",
        client_counts=SUPERVISED_CLIENTS,
        extra={
            **_fold_extra(supervised_fold, workers, []),
            "baseline_rows_per_second": {
                str(c): throughput[c] for c in SUPERVISED_CLIENTS
            },
        },
    )
    try:
        _check_no_regression(throughput, supervised)
    except AssertionError as exc:
        print(f"FAIL: {exc}", file=sys.stderr)
        return 1
    print("OK: service throughput recorded (baseline and journal+supervision)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
