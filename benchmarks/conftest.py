"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures by running
the corresponding experiment from :mod:`repro.experiments` on a shared
:class:`~repro.experiments.harness.ExperimentContext`.  The context (dataset,
fitted DP models, synthetic datasets) is built once per session; individual
benchmarks then time the experiment itself and write the resulting table to
``benchmarks/results/`` so the numbers can be inspected after the run.

The data scale is configurable through environment variables so a quick smoke
run and a full-scale reproduction use the same code:

* ``REPRO_BENCH_RAW_RECORDS`` (default 200000) — raw ACS-like records sampled;
* ``REPRO_BENCH_SYNTHETIC_RECORDS`` (default 2000) — released synthetics per ω.

The trends sharpen as the scale grows (the paper uses 3.1M records); the
defaults keep the full suite at a few minutes on a laptop.
"""

from __future__ import annotations

import inspect
import json
import os
import time
from pathlib import Path

import pytest

from repro.experiments.harness import ExperimentContext, ExperimentResult
from repro.testing.scenarios import get_scenario, scenario_names

RESULTS_DIR = Path(__file__).parent / "results"


def _int_env(name: str, default: int) -> int:
    value = os.environ.get(name)
    return int(value) if value else default


def write_benchmark_json(
    name: str,
    params: dict,
    wall_time: float,
    throughput: float | None = None,
    extra: dict | None = None,
) -> Path:
    """The shared machine-readable benchmark record.

    Every benchmark — pytest-collected or standalone ``main()`` — lands one
    ``benchmarks/results/<name>.json`` with the same shape, so the perf
    trajectory across PRs can be diffed and plotted without parsing the
    human-readable tables:

    ``{"name", "params", "wall_time", "throughput", "recorded_at", ...}``

    ``throughput`` is in the benchmark's natural unit (rows/sec, attempts/sec,
    speedup factor) and may be ``None`` when the benchmark is a pure timing.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    payload = {
        "name": name,
        "params": params,
        "wall_time": wall_time,
        "throughput": throughput,
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
    }
    if extra:
        payload.update(extra)
    path = RESULTS_DIR / f"{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


@pytest.fixture(scope="session")
def context() -> ExperimentContext:
    """The shared experiment context used by every benchmark."""
    return ExperimentContext(
        num_raw_records=_int_env("REPRO_BENCH_RAW_RECORDS", 200_000),
        synthetic_records=_int_env("REPRO_BENCH_SYNTHETIC_RECORDS", 2_000),
        total_epsilon=1.0,
        k=50,
        gamma=4.0,
        epsilon0=1.0,
        seed=7,
    )


@pytest.fixture(params=scenario_names())
def scenario(request):
    """One registered conformance scenario per parametrization.

    Benchmarks and tests draw their small-dataset builders from the same
    registry (:mod:`repro.testing.scenarios`) instead of maintaining separate
    toy fixtures.
    """
    return get_scenario(request.param)


@pytest.fixture(scope="session")
def record_result():
    """Write an experiment result table to benchmarks/results/<name>.txt."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _record(filename: str, result: ExperimentResult) -> ExperimentResult:
        path = RESULTS_DIR / filename
        path.write_text(result.to_text() + "\n")
        return result

    return _record


@pytest.fixture(scope="session")
def record_json():
    """The shared JSON result writer, as a fixture for pytest benchmarks."""
    return write_benchmark_json


def run_once(benchmark, func, params: dict | None = None, throughput: float | None = None):
    """Run an experiment exactly once under pytest-benchmark timing.

    Also lands the shared machine-readable JSON record, named
    ``<module>.<test function>`` so modules with several benchmarks never
    overwrite each other's record; the wall time is measured around the run.
    Callers may pass ``params`` (scale knobs) and, after the fact, overwrite
    the record via :func:`write_benchmark_json` when a derived throughput
    number is available.
    """
    caller = inspect.stack()[1]
    name = f"{Path(caller.filename).stem}.{caller.function}"
    start = time.perf_counter()
    result = benchmark.pedantic(func, rounds=1, iterations=1)
    wall_time = time.perf_counter() - start
    write_benchmark_json(name, params or {}, wall_time, throughput)
    return result
