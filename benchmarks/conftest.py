"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures by running
the corresponding experiment from :mod:`repro.experiments` on a shared
:class:`~repro.experiments.harness.ExperimentContext`.  The context (dataset,
fitted DP models, synthetic datasets) is built once per session; individual
benchmarks then time the experiment itself and write the resulting table to
``benchmarks/results/`` so the numbers can be inspected after the run.

The data scale is configurable through environment variables so a quick smoke
run and a full-scale reproduction use the same code:

* ``REPRO_BENCH_RAW_RECORDS`` (default 200000) — raw ACS-like records sampled;
* ``REPRO_BENCH_SYNTHETIC_RECORDS`` (default 2000) — released synthetics per ω.

The trends sharpen as the scale grows (the paper uses 3.1M records); the
defaults keep the full suite at a few minutes on a laptop.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments.harness import ExperimentContext, ExperimentResult
from repro.testing.scenarios import get_scenario, scenario_names

RESULTS_DIR = Path(__file__).parent / "results"


def _int_env(name: str, default: int) -> int:
    value = os.environ.get(name)
    return int(value) if value else default


@pytest.fixture(scope="session")
def context() -> ExperimentContext:
    """The shared experiment context used by every benchmark."""
    return ExperimentContext(
        num_raw_records=_int_env("REPRO_BENCH_RAW_RECORDS", 200_000),
        synthetic_records=_int_env("REPRO_BENCH_SYNTHETIC_RECORDS", 2_000),
        total_epsilon=1.0,
        k=50,
        gamma=4.0,
        epsilon0=1.0,
        seed=7,
    )


@pytest.fixture(params=scenario_names())
def scenario(request):
    """One registered conformance scenario per parametrization.

    Benchmarks and tests draw their small-dataset builders from the same
    registry (:mod:`repro.testing.scenarios`) instead of maintaining separate
    toy fixtures.
    """
    return get_scenario(request.param)


@pytest.fixture(scope="session")
def record_result():
    """Write an experiment result table to benchmarks/results/<name>.txt."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _record(filename: str, result: ExperimentResult) -> ExperimentResult:
        path = RESULTS_DIR / filename
        path.write_text(result.to_text() + "\n")
        return result

    return _record


def run_once(benchmark, func):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, rounds=1, iterations=1)
