"""Ablation: effect of the parent-cost budget and bucketization on the model.

The structure learner's `maxcost` constraint (Eq. 6) and the bucketization of
parent attributes (Eq. 7) control the complexity of the conditional tables.
This ablation fits the un-noised model under several budgets and reports the
number of edges and the pairwise statistical fidelity of sampled records.
"""

import numpy as np
from conftest import run_once

from repro.experiments.harness import ExperimentResult
from repro.generative.builder import GenerativeModelSpec, fit_bayesian_network
from repro.generative.structure import StructureLearningConfig
from repro.stats.distance import pairwise_attribute_distances


def _fidelity(context, model, num_records=1_500):
    rng = context.rng(111)
    records = np.vstack([model.sample_record(rng) for _ in range(num_records)])
    reference = context.reals_dataset(num_records).data
    distances = pairwise_attribute_distances(
        reference, records, context.dataset.schema.cardinalities
    )
    return float(np.mean(list(distances.values())))


def _sweep_parent_cost(context, budgets=(1, 25, 100, 300)):
    result = ExperimentResult(
        name="Ablation — parent-cost budget (un-noised model, omega=11)",
        headers=["max parent cost", "edges", "mean pairwise TVD vs reals"],
    )
    for budget in budgets:
        spec = GenerativeModelSpec(
            omega=11,
            epsilon_structure=None,
            epsilon_parameters=None,
            structure=StructureLearningConfig(max_parent_cost=budget),
        )
        model = fit_bayesian_network(
            context.splits.structure, context.splits.parameters, spec=spec, rng=context.rng(112)
        )
        result.add_row(budget, model.structure.num_edges, _fidelity(context, model))
    return result


def test_ablation_parent_cost_budget(benchmark, context, record_result):
    result = run_once(benchmark, lambda: _sweep_parent_cost(context))
    record_result("ablation_structure_cost.txt", result)

    edges = result.column("edges")
    fidelity = result.column("mean pairwise TVD vs reals")
    # A cost budget of 1 forces an edgeless (independent) model; larger
    # budgets add edges and improve pairwise fidelity.
    assert edges[0] == 0
    assert edges[-1] > edges[0]
    assert fidelity[-1] < fidelity[0]
