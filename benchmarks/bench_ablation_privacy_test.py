"""Ablation: deterministic vs randomized privacy test.

The deterministic test (Privacy Test 1) gives (k, γ)-plausible deniability
only; randomizing the threshold (Privacy Test 2) upgrades the guarantee to
(ε, δ)-differential privacy (Theorem 1) at the cost of a small amount of
threshold noise.  This ablation measures how the pass rate changes between the
two and records the formal guarantee each one provides.
"""

import numpy as np
from conftest import run_once

from repro.core.mechanism import SynthesisMechanism
from repro.experiments.harness import ExperimentResult
from repro.privacy.plausible_deniability import PlausibleDeniabilityParams, theorem1_guarantee


def _compare_tests(context, num_attempts=400):
    model = context.model("omega=9")
    seeds = context.splits.seeds
    result = ExperimentResult(
        name="Ablation — deterministic vs randomized privacy test (k=50, gamma=4)",
        headers=["privacy test", "pass rate", "epsilon", "delta"],
    )
    deterministic = SynthesisMechanism(
        model, seeds, PlausibleDeniabilityParams(k=context.k, gamma=context.gamma)
    ).run_attempts(num_attempts, context.rng(101))
    result.add_row("deterministic (Test 1)", deterministic.pass_rate, float("nan"), float("nan"))

    randomized = SynthesisMechanism(
        model,
        seeds,
        PlausibleDeniabilityParams(k=context.k, gamma=context.gamma, epsilon0=context.epsilon0),
    ).run_attempts(num_attempts, context.rng(102))
    epsilon, delta, _ = theorem1_guarantee(context.k, context.gamma, context.epsilon0)
    result.add_row("randomized (Test 2)", randomized.pass_rate, epsilon, delta)
    return result


def test_ablation_privacy_test_randomization(benchmark, context, record_result):
    result = run_once(benchmark, lambda: _compare_tests(context))
    record_result("ablation_privacy_test.txt", result)

    deterministic_rate = result.rows[0][1]
    randomized_rate = result.rows[1][1]
    # Threshold noise only matters near the boundary, so the two pass rates
    # must be close; the randomized test buys the DP guarantee almost for free.
    assert abs(deterministic_rate - randomized_rate) < 0.15
    assert np.isfinite(result.rows[1][2])
