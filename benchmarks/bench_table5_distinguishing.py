"""Table 5: the real-vs-synthetic distinguishing game."""

from conftest import run_once

from repro.experiments.distinguishing import run_distinguishing_game


def test_table5_distinguishing_game(benchmark, context, record_result):
    result = run_once(benchmark, lambda: run_distinguishing_game(context))
    record_result("table5_distinguishing.txt", result)

    marginals_rf = result.row_by_key("marginals")[1]
    synthetic_rows = [
        result.row_by_key(variant) for variant in ("omega=11", "omega=10", "omega=9")
    ]

    # Shape check (paper, Table 5): the adversary distinguishes marginals from
    # reals far more easily than it distinguishes the Bayesian-network
    # synthetics, which stay much closer to the 50% indistinguishability line.
    best_synthetic_rf = min(row[1] for row in synthetic_rows)
    assert best_synthetic_rf < marginals_rf
    assert best_synthetic_rf < 0.85
