"""Model-fitting benchmark: vectorized vs loop-reference structure learning.

PR 1 made Mechanism 1's synthesis loop fast enough that model fitting became
the dominant cost of an end-to-end run.  The vectorized engine folds the
~2·m² per-pair full-dataset passes of ``StructureLearner._compute_entropies``
into one shared Gram scan (:mod:`repro.stats.pairwise`), replaces the
per-candidate-edge DAG probe with an incrementally maintained reachability
bitset and draws all DP noise in one batched call.  This benchmark measures
the end-to-end ``learn()`` speedup of the vectorized engine over the
reference loop on a chain-correlated synthetic workload and asserts:

* the speedup is at least 15x at full scale (m=40, n=40000), or at least 5x
  in CI smoke mode (m=25, n=14000) — the floors are deliberately conservative
  for noisy shared runners;
* the two engines learn *identical* structures (the vectorized engine is a
  pure performance optimization);
* every pairwise Gram backend (dense BLAS, scipy sparse, bincount fallback)
  produces bit-identical contingency tables on the workload.

It also reports (without asserting) the batched posterior-sampling speedup of
:func:`repro.generative.parameters.sample_dirichlet_rows` over a per-row
``rng.dirichlet`` loop.

Run standalone (writes ``benchmarks/results/model_fitting.txt``)::

    PYTHONPATH=src python benchmarks/bench_model_fitting.py [--smoke]

or under pytest (the harness used by the other benchmarks)::

    PYTHONPATH=src REPRO_BENCH_FIT_SMOKE=1 python -m pytest benchmarks/bench_model_fitting.py

Scale knobs (environment variables):

* ``REPRO_BENCH_FIT_ATTRIBUTES`` (default 40, smoke 25) — attributes;
* ``REPRO_BENCH_FIT_RECORDS`` (default 40000, smoke 14000) — records;
* ``REPRO_BENCH_FIT_SMOKE`` — any non-empty value selects smoke scale/floor.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path

import numpy as np

from repro.datasets.dataset import Dataset
from repro.datasets.schema import Attribute, AttributeType, Schema
from repro.experiments.harness import ExperimentResult
from repro.generative.parameters import sample_dirichlet_rows
from repro.generative.structure import StructureLearner, StructureLearningConfig
from repro.stats.pairwise import PairwiseStats, scipy_available

FULL_ATTRIBUTES = 40
FULL_RECORDS = 40_000
FULL_FLOOR = 15.0
SMOKE_ATTRIBUTES = 25
SMOKE_RECORDS = 14_000
SMOKE_FLOOR = 5.0


def _int_env(name: str, default: int) -> int:
    value = os.environ.get(name)
    return int(value) if value else default


def _smoke_env() -> bool:
    return bool(os.environ.get("REPRO_BENCH_FIT_SMOKE"))


def build_chain_dataset(num_attributes: int, num_records: int, seed: int = 0) -> Dataset:
    """A chain-correlated synthetic dataset: x_j mostly tracks x_{j-1}.

    Cardinalities 4-7 with roughly halving bucketization, the regime of the
    paper's ACS attributes; the chain gives the CFS learner real structure to
    recover.
    """
    rng = np.random.default_rng(seed)
    cards = [int(card) for card in rng.integers(4, 8, size=num_attributes)]
    attributes = [
        Attribute(
            f"a{index}",
            AttributeType.NUMERICAL,
            tuple(range(card)),
            bucket_size=max(1, card // 2),
        )
        for index, card in enumerate(cards)
    ]
    columns = [rng.integers(0, cards[0], size=num_records)]
    for j in range(1, num_attributes):
        tracked = (columns[j - 1] * cards[j]) // cards[j - 1]
        fresh = rng.integers(0, cards[j], size=num_records)
        columns.append(np.where(rng.random(num_records) < 0.6, tracked, fresh))
    return Dataset(Schema(attributes), np.column_stack(columns))


def _best_of(callable_, repeats: int) -> tuple[float, object]:
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = callable_()
        best = min(best, time.perf_counter() - start)
    return best, result


def _check_gram_backends(dataset: Dataset) -> list[str]:
    """All Gram backends must produce bit-identical counts on this workload."""
    sample = dataset.data[:4096]
    cards = tuple(dataset.schema.cardinalities)
    methods = ["dense", "bincount"] + (["sparse"] if scipy_available() else [])
    grams = {
        method: PairwiseStats.from_matrix(sample, cards, method=method).gram
        for method in methods
    }
    for method in methods[1:]:
        assert np.array_equal(grams["dense"], grams[method]), (
            f"gram backend {method!r} disagrees with the dense backend"
        )
    return methods


def run_benchmark(num_attributes: int, num_records: int) -> tuple[ExperimentResult, float]:
    """Time both engines and return (result table, structure-learning speedup)."""
    dataset = build_chain_dataset(num_attributes, num_records)
    backends = _check_gram_backends(dataset)

    reference = StructureLearner(StructureLearningConfig(engine="reference"))
    vectorized = StructureLearner(StructureLearningConfig(engine="vectorized"))
    reference_seconds, reference_structure = _best_of(
        lambda: reference.learn(dataset), repeats=2
    )
    vectorized_seconds, vectorized_structure = _best_of(
        lambda: vectorized.learn(dataset), repeats=3
    )
    assert reference_structure.parents == vectorized_structure.parents, (
        "vectorized engine must learn the same structure as the reference"
    )
    speedup = reference_seconds / vectorized_seconds

    # Posterior sampling: per-row dirichlet loop vs one batched gamma call
    # (informational; distribution-equivalent but on a different RNG stream).
    posterior = np.random.default_rng(5).uniform(0.5, 50.0, size=(2000, 8))
    loop_seconds, _ = _best_of(
        lambda: np.vstack(
            [np.random.default_rng(7).dirichlet(row) for row in posterior]
        ),
        repeats=2,
    )
    batched_seconds, _ = _best_of(
        lambda: sample_dirichlet_rows(np.random.default_rng(7), posterior), repeats=3
    )

    result = ExperimentResult(
        name=(
            f"Model fitting: vectorized vs reference "
            f"(m={num_attributes}, n={num_records})"
        ),
        headers=["phase", "reference s", "vectorized s", "speedup"],
        notes=(
            f"gram backends verified bit-identical: {', '.join(backends)}; "
            f"structures identical: True; "
            f"edges learned: {reference_structure.num_edges}"
        ),
    )
    result.add_row(
        "structure learning", reference_seconds, vectorized_seconds, speedup
    )
    result.add_row(
        "posterior sampling (2000x8)",
        loop_seconds,
        batched_seconds,
        loop_seconds / batched_seconds,
    )
    return result, speedup


def _scale_and_floor() -> tuple[int, int, float]:
    smoke = _smoke_env()
    num_attributes = _int_env(
        "REPRO_BENCH_FIT_ATTRIBUTES", SMOKE_ATTRIBUTES if smoke else FULL_ATTRIBUTES
    )
    num_records = _int_env(
        "REPRO_BENCH_FIT_RECORDS", SMOKE_RECORDS if smoke else FULL_RECORDS
    )
    return num_attributes, num_records, (SMOKE_FLOOR if smoke else FULL_FLOOR)


def _record_json(num_attributes: int, num_records: int, result, speedup: float) -> None:
    from conftest import write_benchmark_json

    reference_seconds, vectorized_seconds = result.row_by_key("structure learning")[1:3]
    write_benchmark_json(
        "bench_model_fitting",
        params={"attributes": num_attributes, "records": num_records},
        wall_time=float(reference_seconds) + float(vectorized_seconds),
        throughput=speedup,  # speedup factor is this benchmark's headline number
        extra={
            "reference_seconds": float(reference_seconds),
            "vectorized_seconds": float(vectorized_seconds),
        },
    )


def test_model_fitting_speedup(record_result):
    num_attributes, num_records, floor = _scale_and_floor()
    result, speedup = run_benchmark(num_attributes, num_records)
    record_result("model_fitting.txt", result)
    _record_json(num_attributes, num_records, result, speedup)
    assert speedup >= floor, (
        f"vectorized structure learning must be >= {floor}x faster than the "
        f"reference loop, got {speedup:.1f}x"
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="tiny sizes and the relaxed 5x floor"
    )
    args = parser.parse_args(argv)
    if args.smoke:
        os.environ["REPRO_BENCH_FIT_SMOKE"] = "1"

    num_attributes, num_records, floor = _scale_and_floor()
    result, speedup = run_benchmark(num_attributes, num_records)
    print(result.to_text())
    results_dir = Path(__file__).parent / "results"
    results_dir.mkdir(exist_ok=True)
    (results_dir / "model_fitting.txt").write_text(result.to_text() + "\n")
    _record_json(num_attributes, num_records, result, speedup)
    if speedup < floor:
        print(f"FAIL: speedup {speedup:.1f}x below the {floor}x floor", file=sys.stderr)
        return 1
    print(f"OK: structure-learning speedup {speedup:.1f}x (floor {floor}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
