"""Figure 3: statistical distance of single-attribute distributions."""

from conftest import run_once

from repro.experiments.statistical_distance import run_single_attribute_distance


def test_figure3_single_attribute_distance(benchmark, context, record_result):
    result = run_once(benchmark, lambda: run_single_attribute_distance(context))
    record_result("figure3_distance_single.txt", result)

    reals = result.row_by_key("reals")[1]
    marginals = result.row_by_key("marginals")[1]
    synthetics = result.row_by_key("omega=9")[1]

    # Shape check (paper, Figure 3): all single-attribute distances are small;
    # marginals and synthetics are both close to the real-vs-real noise floor,
    # with marginals sometimes slightly ahead on single attributes.
    assert reals < 0.1
    assert marginals < 0.2
    assert synthetics < 0.2
    assert synthetics < 3 * max(marginals, 0.02)
