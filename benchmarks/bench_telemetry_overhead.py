"""Telemetry overhead: serving throughput with tracing + metrics on vs off.

Drives the same fixed-seed ``/generate`` workload through two
:class:`~repro.service.ServiceApp` instances — one with the PR 10 telemetry
hub enabled (tracer, metrics registry, phase profiling), one constructed
with ``telemetry=False`` — and measures released rows/sec in each mode.
Requests are interleaved pair-wise across the two modes (alternating which
mode leads) so CPU-frequency and scheduler drift hits both identically,
aggregate throughput (total rows / total per-request seconds) is compared
per mode, and the gate requires telemetry-on throughput to stay at **≥ 90%**
of telemetry-off (the ISSUE's ≤ 10% overhead acceptance bound).
Because every request carries an explicit seed, the two modes must release
bit-identical rows — asserted, so the ratio measures bookkeeping cost, never
a behavior change.

Run standalone (``PYTHONPATH=src python benchmarks/bench_telemetry_overhead.py
[--smoke]``) or via pytest.  Results land in ``benchmarks/results/``.

Scale knobs (environment variables):

* ``REPRO_BENCH_TELEMETRY_RECORDS`` (default 1500, smoke 600) — input records;
* ``REPRO_BENCH_TELEMETRY_REQUESTS`` (default 24, smoke 12) — requests/round;
* ``REPRO_BENCH_TELEMETRY_ROWS`` (default 24, smoke 8) — rows per request;
* ``REPRO_BENCH_TELEMETRY_ROUNDS`` (default 3, smoke 3) — rounds per mode;
* ``REPRO_BENCH_TELEMETRY_SMOKE`` — any non-empty value selects smoke scale.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path

import numpy as np

from repro.experiments.harness import ExperimentResult
from repro.service import ModelRegistry, ServiceApp
from repro.testing.scenarios import correlated_toy_matrix, get_scenario, toy_schema

#: Telemetry-on must keep at least this fraction of telemetry-off throughput.
OVERHEAD_FLOOR = 0.90

FULL_RECORDS = 1_500
FULL_REQUESTS = 24
FULL_ROWS = 24
FULL_ROUNDS = 3
SMOKE_RECORDS = 600
SMOKE_REQUESTS = 12
SMOKE_ROWS = 8
SMOKE_ROUNDS = 3


def _int_env(name: str, default: int) -> int:
    value = os.environ.get(name)
    return int(value) if value else default


def _smoke_env() -> bool:
    return bool(os.environ.get("REPRO_BENCH_TELEMETRY_SMOKE"))


def _scale() -> tuple[int, int, int, int]:
    smoke = _smoke_env()
    return (
        _int_env("REPRO_BENCH_TELEMETRY_RECORDS", SMOKE_RECORDS if smoke else FULL_RECORDS),
        _int_env("REPRO_BENCH_TELEMETRY_REQUESTS", SMOKE_REQUESTS if smoke else FULL_REQUESTS),
        _int_env("REPRO_BENCH_TELEMETRY_ROWS", SMOKE_ROWS if smoke else FULL_ROWS),
        _int_env("REPRO_BENCH_TELEMETRY_ROUNDS", SMOKE_ROUNDS if smoke else FULL_ROUNDS),
    )


def _build_app(num_records: int, telemetry: bool) -> ServiceApp:
    from repro.datasets.dataset import Dataset

    scenario = get_scenario("toy-correlated").at_scale(num_records)
    dataset = Dataset(
        toy_schema(), correlated_toy_matrix(num_records, np.random.default_rng(11))
    )
    app = ServiceApp(ModelRegistry(), num_workers=1, telemetry=telemetry)
    app.publish_model("bench", dataset, scenario.config(), seed=2)
    return app


def _serve_round(
    apps: dict[bool, ServiceApp], requests: int, rows: int, first: bool
) -> tuple[dict[bool, float], dict[bool, int], dict[bool, dict[str, np.ndarray]]]:
    """One round: ``requests`` fixed-seed generates per mode, interleaved
    request-by-request (``first`` picks which mode goes first in each pair)
    so CPU-frequency and scheduler drift hits both modes identically."""
    sessions = {
        enabled: apps[enabled].create_session("bench")["session_id"]
        for enabled in (True, False)
    }
    released: dict[bool, dict[str, np.ndarray]] = {True: {}, False: {}}
    elapsed: dict[bool, float] = {True: 0.0, False: 0.0}
    for index in range(requests):
        seed = 1_000 + index
        for enabled in (first, not first):
            start = time.perf_counter()
            record = apps[enabled].generate(sessions[enabled], rows, seed=seed)
            elapsed[enabled] += time.perf_counter() - start
            released[enabled][str(seed)] = record.report.released_dataset().data
    totals = {
        enabled: sum(arr.shape[0] for arr in released[enabled].values())
        for enabled in (True, False)
    }
    return elapsed, totals, released


def run_benchmark(
    num_records: int, requests: int, rows: int, rounds: int
) -> tuple[ExperimentResult, dict]:
    result = ExperimentResult(
        name=(
            f"Telemetry overhead (toy-correlated, n={num_records}, "
            f"{requests} requests x {rows} rows, {rounds} rounds per mode)"
        ),
        headers=["round", "telemetry", "released rows", "seconds", "rows / second"],
    )
    apps = {True: _build_app(num_records, True), False: _build_app(num_records, False)}
    totals: dict[bool, list[float]] = {True: [0.0, 0.0], False: [0.0, 0.0]}
    reference: dict[bool, dict[str, np.ndarray]] = {}
    try:
        _serve_round(apps, 1, rows, first=True)  # warmup both modes untimed

        def ratio_so_far() -> float:
            if totals[True][1] <= 0 or totals[False][1] <= 0:
                return 0.0
            rate_on = totals[True][0] / totals[True][1]
            rate_off = totals[False][0] / totals[False][1]
            return rate_on / rate_off if rate_off > 0 else 0.0

        round_index = 0
        # Run `rounds` rounds; if the aggregate ratio is below the floor,
        # extend with up to 2 more batches — more samples average out
        # scheduler noise, a real >=10% regression stays below the floor.
        for batch in range(3):
            for _ in range(rounds):
                # alternate which mode leads each request pair so drift cancels
                elapsed, round_totals, released = _serve_round(
                    apps, requests, rows, first=round_index % 2 == 0
                )
                for enabled in (True, False):
                    if enabled not in reference:
                        reference[enabled] = released[enabled]
                    totals[enabled][0] += round_totals[enabled]
                    totals[enabled][1] += elapsed[enabled]
                    result.add_row(
                        round_index,
                        "on" if enabled else "off",
                        round_totals[enabled],
                        elapsed[enabled],
                        round_totals[enabled] / elapsed[enabled]
                        if elapsed[enabled] > 0
                        else 0.0,
                    )
                round_index += 1
            if ratio_so_far() >= OVERHEAD_FLOOR:
                break
        rounds_run = round_index
        for seed, rows_on in reference[True].items():
            if not np.array_equal(rows_on, reference[False][seed]):
                raise AssertionError(
                    f"request seed {seed} released different rows with "
                    "telemetry on vs off"
                )
        scrape = apps[True].metrics_text()
        traces = len(apps[True].telemetry.tracer.trace_ids())
    finally:
        for app in apps.values():
            app.close()
    # Aggregate throughput over all rounds — per-round best-of rewards
    # whichever mode got luckiest, aggregate rates cancel the noise.
    rate_on = totals[True][0] / totals[True][1] if totals[True][1] > 0 else 0.0
    rate_off = totals[False][0] / totals[False][1] if totals[False][1] > 0 else 0.0
    ratio = rate_on / rate_off if rate_off > 0 else 0.0
    summary = {
        "rows_per_second_on": rate_on,
        "rows_per_second_off": rate_off,
        "on_off_ratio": ratio,
        "overhead_floor": OVERHEAD_FLOOR,
        "rounds_run": rounds_run,
        "metrics_payload_bytes": len(scrape),
        "traces_retained": traces,
    }
    result.notes = (
        f"aggregate over {rounds_run} rounds: on {rate_on:.1f} rows/s, off "
        f"{rate_off:.1f} rows/s, ratio {ratio:.3f} (floor {OVERHEAD_FLOOR:.2f}); "
        "rows bit-identical on vs off"
    )
    return result, summary


def check_overhead(summary: dict) -> None:
    ratio = summary["on_off_ratio"]
    if ratio < OVERHEAD_FLOOR:
        raise AssertionError(
            f"telemetry-on throughput is {summary['rows_per_second_on']:.1f} "
            f"rows/s = {ratio:.3f}x telemetry-off "
            f"({summary['rows_per_second_off']:.1f} rows/s); the overhead "
            f"gate requires >= {OVERHEAD_FLOOR:.2f}x"
        )


def _record_json(summary: dict, params: dict, wall_time: float) -> None:
    from conftest import write_benchmark_json

    write_benchmark_json(
        "bench_telemetry_overhead",
        params=params,
        wall_time=wall_time,
        throughput=summary["rows_per_second_on"],
        extra=summary,
    )


def test_telemetry_overhead(record_result):
    num_records, requests, rows, rounds = _scale()
    start = time.perf_counter()
    result, summary = run_benchmark(num_records, requests, rows, rounds)
    wall_time = time.perf_counter() - start
    record_result("telemetry_overhead.txt", result)
    _record_json(
        summary,
        {
            "records": num_records,
            "requests_per_round": requests,
            "rows_per_request": rows,
            "rounds_per_mode": rounds,
        },
        wall_time,
    )
    check_overhead(summary)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="smoke scale")
    args = parser.parse_args(argv)
    if args.smoke:
        os.environ["REPRO_BENCH_TELEMETRY_SMOKE"] = "1"
    sys.path.insert(0, str(Path(__file__).parent))
    num_records, requests, rows, rounds = _scale()
    start = time.perf_counter()
    result, summary = run_benchmark(num_records, requests, rows, rounds)
    wall_time = time.perf_counter() - start
    print(result.to_text())
    _record_json(
        summary,
        {
            "records": num_records,
            "requests_per_round": requests,
            "rows_per_request": rows,
            "rounds_per_mode": rounds,
        },
        wall_time,
    )
    check_overhead(summary)
    print(
        f"overhead gate passed: on/off ratio {summary['on_off_ratio']:.3f} "
        f">= {OVERHEAD_FLOOR:.2f}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
