"""Figure 1: relative improvement of model accuracy over marginals (DP vs no noise)."""

import numpy as np
from conftest import run_once

from repro.experiments.model_accuracy import run_model_improvement


def test_figure1_relative_improvement(benchmark, context, record_result):
    result = run_once(
        benchmark,
        lambda: run_model_improvement(
            context, num_eval_records=300, epsilons=(None, 1.0, 0.1), repeats=2
        ),
    )
    record_result("figure1_model_improvement.txt", result)

    unnoised = np.array(result.column("no noise"), dtype=float)
    eps1 = np.array(result.column("epsilon=1.0"), dtype=float)

    # Shape check (paper, Figure 1): the generative model improves on the
    # marginals for a majority of attributes, and the eps=1 DP model keeps
    # most of the un-noised model's improvement on average.
    assert np.sum(unnoised > 0) >= 6
    assert eps1.mean() >= unnoised.mean() - 0.25
