"""Figure 2: per-attribute model accuracy vs random forest, marginals, random."""

import numpy as np
from conftest import run_once

from repro.experiments.model_accuracy import run_model_accuracy


def test_figure2_model_accuracy(benchmark, context, record_result):
    result = run_once(
        benchmark,
        lambda: run_model_accuracy(context, num_eval_records=300, forest_train_records=4_000),
    )
    record_result("figure2_model_accuracy.txt", result)

    generative = np.array(result.column("generative"), dtype=float)
    marginals = np.array(result.column("marginals"), dtype=float)
    random_guess = np.array(result.column("random"), dtype=float)

    # Shape check (paper, Figure 2): the generative model beats random
    # guessing everywhere and beats the marginal predictor on average and on
    # a majority of attributes.
    assert np.all(generative >= random_guess - 0.02)
    assert generative.mean() > marginals.mean()
    assert np.sum(generative >= marginals - 1e-9) >= 6
