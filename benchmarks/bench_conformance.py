"""Per-scenario conformance throughput: fit + golden digest wall-clock.

Times the end-to-end conformance unit of work — scenario fit plus the
golden-run digest — for every registered scenario, and sanity-checks that two
digest runs of the same scenario agree (the property the golden store relies
on).  Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_conformance.py -q
"""

from conftest import run_once

from repro.testing.golden import scenario_digest


def test_scenario_fit_and_digest(benchmark, scenario):
    digest = run_once(benchmark, lambda: scenario_digest(scenario, seed=0))
    assert digest["attempts"] == scenario.attempts
    assert 0 <= digest["released_count"] <= digest["attempts"]
    # Digest stability is what makes golden checks meaningful.
    assert scenario_digest(scenario, seed=0) == digest
