"""Ablation: MAP point-estimate vs posterior-sampled conditional tables.

The paper samples the multinomial parameters from the Dirichlet posterior
(Eq. 12) "to increase the variety of data samples" instead of using the most
likely parameters (Eq. 13).  This ablation fits both variants and compares the
statistical fidelity and the diversity (unique-record fraction) of the
generated data.
"""

import numpy as np
from conftest import run_once

from repro.experiments.harness import ExperimentResult
from repro.generative.builder import GenerativeModelSpec, fit_bayesian_network
from repro.stats.distance import pairwise_attribute_distances


def _generate(context, sample_parameters, num_records=1_500):
    spec = GenerativeModelSpec(
        omega=11,
        epsilon_structure=None,
        epsilon_parameters=None,
        sample_parameters=sample_parameters,
    )
    model = fit_bayesian_network(
        context.splits.structure, context.splits.parameters, spec=spec, rng=context.rng(120)
    )
    rng = context.rng(121)
    return np.vstack([model.sample_record(rng) for _ in range(num_records)])


def _compare(context):
    reference = context.reals_dataset(1_500).data
    cardinalities = context.dataset.schema.cardinalities
    result = ExperimentResult(
        name="Ablation — MAP vs posterior-sampled conditional tables",
        headers=["parameterization", "mean pairwise TVD vs reals", "unique record fraction"],
    )
    for label, sample_parameters in (("MAP point estimate", False), ("posterior sample", True)):
        records = _generate(context, sample_parameters)
        distances = pairwise_attribute_distances(reference, records, cardinalities)
        unique_fraction = len(np.unique(records, axis=0)) / len(records)
        result.add_row(label, float(np.mean(list(distances.values()))), unique_fraction)
    return result


def test_ablation_parameter_sampling(benchmark, context, record_result):
    result = run_once(benchmark, lambda: _compare(context))
    record_result("ablation_parameters.txt", result)

    map_fidelity = result.rows[0][1]
    sampled_fidelity = result.rows[1][1]
    # Posterior sampling injects extra variance but must not destroy fidelity.
    assert sampled_fidelity < map_fidelity + 0.1
    assert all(0.0 < row[2] <= 1.0 for row in result.rows)
