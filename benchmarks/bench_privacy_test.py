"""Privacy-test latency: exact full scan vs bounded-latency approximate mode.

The exact plausible-deniability test scans every seed record per candidate,
so at millions of seeds the scan *is* the per-release latency floor.  The
approximate (BlinkDB-mode) test decides most candidates from a stratified
sample with deterministic bounds, escalating only near-threshold ones to the
exact scan — final decisions are bit-identical by construction, which this
benchmark re-asserts on every candidate.

The seed population is a synthetic oracle with *no* prefix-key match
structure, so the exact path is the honest dense O(N) scan (hash-planted
bucket membership, probabilities γ^-1 / γ^-3).  Candidates are dominated by
comfortably-releasable ones (bucket populations ~10-30% of N against k = 50)
with a small near-threshold tail (< 1%) that must escalate; that mirrors the
paper's regime, where most candidates clear k by orders of magnitude.

Each candidate is timed individually through both paths; the headline
numbers are the p50/p99 per-candidate latencies and the speedup gates:

* full scale (≥ 1M seeds): approximate p99 must be ≥ 5× better than exact;
* smoke scale: ≥ 2× — enforced, never silently skipped.

The escalation rate is recorded alongside, so a tuning regression that
silently routes everything to the exact scan shows up in the JSON record
even before it breaks a gate.

Run standalone (``PYTHONPATH=src python benchmarks/bench_privacy_test.py
[--smoke]``) or via pytest.  Scale knobs:

* ``REPRO_BENCH_PRIVACY_RECORDS`` (default 1_000_000, smoke 100_000);
* ``REPRO_BENCH_PRIVACY_CANDIDATES`` (default 1000, smoke 200);
* ``REPRO_BENCH_PRIVACY_SMOKE`` — any non-empty value selects smoke scale.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

import numpy as np

from repro.privacy.approximate import (
    ApproximateTestConfig,
    approximate_plausible_counts,
)
from repro.privacy.plausible_deniability import partition_numbers

GAMMA = 4.0
K = 50
#: Members of a candidate's bucket get γ^-1, everyone else γ^-3.
MEMBER_BUCKET = 1
FULL_RECORDS = 1_000_000
FULL_CANDIDATES = 1_000
SMOKE_RECORDS = 100_000
SMOKE_CANDIDATES = 200
FULL_SPEEDUP_FLOOR = 5.0
SMOKE_SPEEDUP_FLOOR = 2.0
#: The candidate mix: this fraction is near-threshold (must escalate); the
#: rest have bucket populations uniform in [10%, 30%] of the records.
NEAR_THRESHOLD_FRACTION = 0.005

APPROX_CONFIG = ApproximateTestConfig(
    initial_sample=1024, growth_factor=4, max_rounds=3, min_records=1
)


def _int_env(name: str, default: int) -> int:
    value = os.environ.get(name)
    return int(value) if value else default


def _smoke_env() -> bool:
    return bool(os.environ.get("REPRO_BENCH_PRIVACY_SMOKE"))


def _scale() -> tuple[int, int]:
    smoke = _smoke_env()
    return (
        _int_env("REPRO_BENCH_PRIVACY_RECORDS", SMOKE_RECORDS if smoke else FULL_RECORDS),
        _int_env(
            "REPRO_BENCH_PRIVACY_CANDIDATES",
            SMOKE_CANDIDATES if smoke else FULL_CANDIDATES,
        ),
    )


class OracleSeeds:
    """Hash-planted bucket membership over ``num_records`` synthetic seeds.

    ``membership(c, rows)`` is a pure function of (candidate, row), so any
    subset of rows can be evaluated without materializing a (candidates x
    records) matrix — exactly the access pattern the sampling driver needs —
    while the exact path still has to touch all N rows.  Record 0 doubles as
    every candidate's own seed and is always a member.
    """

    _MULT = np.uint64(2654435761)

    def __init__(self, num_records: int, fractions: np.ndarray):
        self.num_records = num_records
        self.fractions = np.asarray(fractions, dtype=np.float64)
        self._cutoffs = (self.fractions * 2.0**32).astype(np.uint64)

    def membership(self, candidate: int, rows: np.ndarray) -> np.ndarray:
        rows = np.asarray(rows, dtype=np.uint64)
        hashed = ((rows + np.uint64(candidate * 1_000_003)) * self._MULT) & np.uint64(
            0xFFFFFFFF
        )
        return (hashed < self._cutoffs[candidate]) | (rows == 0)

    def probabilities(self, candidate: int, rows: np.ndarray) -> np.ndarray:
        member = self.membership(candidate, rows)
        return np.where(member, GAMMA**-1.0, GAMMA**-3.0)


def _build_oracle(num_records: int, num_candidates: int, seed: int) -> OracleSeeds:
    rng = np.random.default_rng(seed)
    fractions = rng.uniform(0.10, 0.30, size=num_candidates)
    near = max(1, int(round(NEAR_THRESHOLD_FRACTION * num_candidates)))
    # Near-threshold plants: expected bucket population ~K, forcing the
    # deterministic bounds to stay inconclusive and the candidate to escalate.
    fractions[rng.choice(num_candidates, size=near, replace=False)] = (
        K / num_records
    )
    return OracleSeeds(num_records, fractions)


def _exact_decide(oracle: OracleSeeds, candidate: int) -> tuple[int, bool]:
    """The exact test: dense scan, partition, count — O(records)."""
    rows = np.arange(oracle.num_records, dtype=np.int64)
    probabilities = oracle.probabilities(candidate, rows)
    partitions = partition_numbers(probabilities, GAMMA)
    count = int(np.sum(partitions == MEMBER_BUCKET))
    return count, count >= K


def _approximate_decide(
    oracle: OracleSeeds, candidate: int, rng: np.random.Generator
) -> tuple[int, bool, bool, int]:
    """The approximate test for one candidate: count, decision, escalated, checked."""

    def probability_fn(record_indices, candidate_indices):
        return oracle.probabilities(candidate, record_indices)[None, :]

    def exact_fn(candidate_indices):
        count, _ = _exact_decide(oracle, candidate)
        return (
            np.array([count], dtype=np.int64),
            np.array([oracle.num_records], dtype=np.int64),
        )

    report = approximate_plausible_counts(
        seed_partitions=np.array([MEMBER_BUCKET], dtype=np.int64),
        seed_record_indices=np.array([0], dtype=np.int64),
        thresholds=np.array([float(K)]),
        probability_fn=probability_fn,
        exact_fn=exact_fn,
        num_records=oracle.num_records,
        gamma=GAMMA,
        config=APPROX_CONFIG,
        rng=rng,
    )
    return (
        int(report.counts[0]),
        bool(report.counts[0] >= K),
        bool(report.escalated[0]),
        int(report.records_checked[0]),
    )


def run_benchmark(num_records: int, num_candidates: int) -> dict:
    """Time both paths per candidate; assert decision identity throughout."""
    oracle = _build_oracle(num_records, num_candidates, seed=13)

    exact_latencies = np.zeros(num_candidates)
    approx_latencies = np.zeros(num_candidates)
    escalations = 0
    records_checked_total = 0

    for candidate in range(num_candidates):
        start = time.perf_counter()
        exact_count, exact_passed = _exact_decide(oracle, candidate)
        exact_latencies[candidate] = time.perf_counter() - start

        rng = np.random.default_rng(np.random.SeedSequence(17, spawn_key=(candidate,)))
        start = time.perf_counter()
        approx_count, approx_passed, escalated, checked = _approximate_decide(
            oracle, candidate, rng
        )
        approx_latencies[candidate] = time.perf_counter() - start

        if approx_passed != exact_passed:
            raise AssertionError(
                f"candidate {candidate}: approximate decision {approx_passed} "
                f"!= exact {exact_passed} (counts {approx_count} vs {exact_count})"
            )
        escalations += escalated
        records_checked_total += checked

    def _percentiles(latencies: np.ndarray) -> dict:
        return {
            "p50_ms": float(np.percentile(latencies, 50) * 1e3),
            "p99_ms": float(np.percentile(latencies, 99) * 1e3),
            "mean_ms": float(latencies.mean() * 1e3),
        }

    exact_stats = _percentiles(exact_latencies)
    approx_stats = _percentiles(approx_latencies)
    return {
        "records": num_records,
        "candidates": num_candidates,
        "k": K,
        "gamma": GAMMA,
        "exact": exact_stats,
        "approximate": approx_stats,
        "p99_speedup": exact_stats["p99_ms"] / approx_stats["p99_ms"],
        "p50_speedup": exact_stats["p50_ms"] / approx_stats["p50_ms"],
        "escalation_rate": escalations / num_candidates,
        "mean_records_checked": records_checked_total / num_candidates,
        "scan_fraction": records_checked_total / (num_candidates * num_records),
    }


def check_gates(stats: dict, smoke: bool) -> None:
    """The speedup and sanity gates; raises AssertionError, never skips."""
    floor = SMOKE_SPEEDUP_FLOOR if smoke else FULL_SPEEDUP_FLOOR
    if stats["p99_speedup"] < floor:
        raise AssertionError(
            f"approximate p99 {stats['approximate']['p99_ms']:.2f} ms is only "
            f"{stats['p99_speedup']:.1f}x better than exact "
            f"{stats['exact']['p99_ms']:.2f} ms; the "
            f"{'smoke' if smoke else 'full'} gate requires >= {floor:.0f}x"
        )
    if stats["escalation_rate"] > 0.05:
        raise AssertionError(
            f"escalation rate {stats['escalation_rate']:.1%} exceeds 5%: the "
            "sampling schedule is no longer deciding the easy candidates"
        )


def _record(stats: dict, wall_time: float) -> None:
    from conftest import write_benchmark_json

    write_benchmark_json(
        "bench_privacy_test",
        params={
            "records": stats["records"],
            "candidates": stats["candidates"],
            "k": stats["k"],
            "gamma": stats["gamma"],
            "smoke": _smoke_env(),
        },
        wall_time=wall_time,
        throughput=stats["p99_speedup"],
        extra={
            "exact": stats["exact"],
            "approximate": stats["approximate"],
            "p99_speedup": stats["p99_speedup"],
            "p50_speedup": stats["p50_speedup"],
            "escalation_rate": stats["escalation_rate"],
            "mean_records_checked": stats["mean_records_checked"],
            "scan_fraction": stats["scan_fraction"],
        },
    )


def _format(stats: dict) -> str:
    return (
        f"privacy test @ {stats['records']:,} seeds x {stats['candidates']} candidates "
        f"(k={stats['k']}, gamma={stats['gamma']}):\n"
        f"  exact        p50 {stats['exact']['p50_ms']:8.3f} ms   "
        f"p99 {stats['exact']['p99_ms']:8.3f} ms\n"
        f"  approximate  p50 {stats['approximate']['p50_ms']:8.3f} ms   "
        f"p99 {stats['approximate']['p99_ms']:8.3f} ms\n"
        f"  p99 speedup {stats['p99_speedup']:.1f}x, p50 speedup "
        f"{stats['p50_speedup']:.1f}x, escalation rate "
        f"{stats['escalation_rate']:.2%}, mean records checked "
        f"{stats['mean_records_checked']:,.0f} ({stats['scan_fraction']:.2%} of a full scan)"
    )


def test_privacy_test_latency():
    num_records, num_candidates = _scale()
    start = time.perf_counter()
    stats = run_benchmark(num_records, num_candidates)
    wall_time = time.perf_counter() - start
    _record(stats, wall_time)
    check_gates(stats, smoke=_smoke_env() or num_records < FULL_RECORDS)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="tiny sizes")
    args = parser.parse_args(argv)
    if args.smoke:
        os.environ["REPRO_BENCH_PRIVACY_SMOKE"] = "1"

    num_records, num_candidates = _scale()
    start = time.perf_counter()
    stats = run_benchmark(num_records, num_candidates)
    wall_time = time.perf_counter() - start
    print(_format(stats))
    _record(stats, wall_time)
    try:
        check_gates(stats, smoke=_smoke_env() or num_records < FULL_RECORDS)
    except AssertionError as exc:
        print(f"FAIL: {exc}", file=sys.stderr)
        return 1
    print("OK: privacy-test latency recorded")
    return 0


if __name__ == "__main__":
    sys.exit(main())
