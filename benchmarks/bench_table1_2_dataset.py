"""Tables 1-2: dataset schema and extraction / cleaning statistics."""

from conftest import run_once

from repro.experiments.dataset_summary import run_attribute_table, run_dataset_summary


def test_table1_attribute_schema(benchmark, context, record_result):
    result = run_once(benchmark, lambda: run_attribute_table(context))
    record_result("table1_attributes.txt", result)
    assert len(result.rows) == 11


def test_table2_cleaning_statistics(benchmark, context, record_result):
    result = run_once(benchmark, lambda: run_dataset_summary(context))
    record_result("table2_cleaning.txt", result)
    raw = result.row_by_key("raw records")[1]
    clean = result.row_by_key("clean records")[1]
    assert 0 < clean < raw
    # Most records are unique, as in the paper's Table 2.
    assert result.row_by_key("unique record fraction")[1] > 0.5
