"""Table 3: classifier accuracy and agreement rate per training dataset."""

from conftest import run_once

from repro.experiments.classifier_comparison import run_classifier_comparison


def test_table3_classifier_comparison(benchmark, context, record_result):
    result = run_once(benchmark, lambda: run_classifier_comparison(context))
    record_result("table3_classifiers.txt", result)

    reals = result.row_by_key("reals")
    marginals = result.row_by_key("marginals")
    synthetics = result.row_by_key("omega=9")
    headers = result.headers

    rf_accuracy = headers.index("RF accuracy")
    rf_agreement = headers.index("RF agreement")

    # Shape check (paper, Table 3): classifiers trained on synthetics land
    # between the marginals baseline and the reals-trained classifiers, and
    # their agreement with the reals-trained model beats the marginals'.
    assert reals[rf_accuracy] >= synthetics[rf_accuracy] - 0.03
    assert synthetics[rf_accuracy] > marginals[rf_accuracy]
    assert synthetics[rf_agreement] > marginals[rf_agreement]
