"""Parallel synthesis engine scaling on the ACS workload.

The paper's Section 5 / Figure 5 argument is that seed-based synthesis is
embarrassingly parallel: every proposal depends only on its own seed, so
throughput should scale with cores.  This benchmark measures the chunk-
dispatching :class:`~repro.core.engine.SynthesisEngine` at a fixed attempt
budget for several worker counts, with each pool started (workers spawned,
shared-memory seed matrix and model tables attached, match index built)
*before* timing begins — the numbers are steady-state chunk throughput, not
process startup.

Because chunk RNG streams are keyed by chunk index, every worker count
produces the identical merged report; the benchmark asserts that too, so the
speedup column is a pure scheduling measurement.

Floors (only asserted when the machine actually has the cores):

* full mode — >= 2.5x throughput at 4 workers vs the in-process serial
  reference (needs >= 4 CPUs);
* ``--smoke`` (CI) — the 2-worker pool must beat 1 worker on wall-clock at
  the same attempt budget (needs >= 2 CPUs).

Scale knobs (environment variables):

* ``REPRO_BENCH_ENGINE_RAW_RECORDS`` (default 40000, smoke 12000);
* ``REPRO_BENCH_ENGINE_ATTEMPTS`` (default 20000, smoke 6000);
* ``REPRO_BENCH_ENGINE_CHUNK`` (default 256) — attempts per dispatched chunk;
* ``REPRO_BENCH_ENGINE_SMOKE`` — any non-empty value selects smoke scale.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path

import numpy as np

from repro.core.engine import SynthesisEngine
from repro.datasets.acs import load_acs
from repro.datasets.splits import split_dataset
from repro.experiments.harness import ExperimentResult
from repro.generative.builder import GenerativeModelSpec, fit_bayesian_network
from repro.privacy.plausible_deniability import PlausibleDeniabilityParams

FULL_RAW_RECORDS = 40_000
FULL_ATTEMPTS = 20_000
SMOKE_RAW_RECORDS = 12_000
SMOKE_ATTEMPTS = 6_000
FULL_FLOOR_WORKERS = 4
FULL_FLOOR = 2.5
BATCH_SIZE = 128


def _int_env(name: str, default: int) -> int:
    value = os.environ.get(name)
    return int(value) if value else default


def _smoke_env() -> bool:
    return bool(os.environ.get("REPRO_BENCH_ENGINE_SMOKE"))


def _available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:
        return os.cpu_count() or 1


def _build_workload(raw_records: int):
    dataset = load_acs(num_records=raw_records, seed=11)
    splits = split_dataset(dataset, rng=np.random.default_rng(17))
    spec = GenerativeModelSpec(omega=9, epsilon_structure=None, epsilon_parameters=None)
    model = fit_bayesian_network(
        splits.structure, splits.parameters, spec=spec, rng=np.random.default_rng(18)
    )
    params = PlausibleDeniabilityParams(k=50, gamma=4.0, epsilon0=1.0)
    return model, splits.seeds, params


def run_benchmark(
    raw_records: int,
    num_attempts: int,
    chunk_size: int,
    worker_counts: tuple[int, ...],
) -> tuple[ExperimentResult, dict[int, float]]:
    """Time the engine at a fixed attempt budget for each worker count."""
    model, seeds, params = _build_workload(raw_records)

    result = ExperimentResult(
        name=(
            f"Parallel engine scaling (ACS workload, omega=9, k=50, "
            f"attempts={num_attempts}, chunk={chunk_size}, batch={BATCH_SIZE})"
        ),
        headers=["workers", "attempts", "seconds", "attempts / second", "speedup"],
        notes=(
            f"seed records: {len(seeds)}; pool startup excluded; identical "
            f"merged reports across worker counts; cpus available: "
            f"{_available_cpus()}"
        ),
    )
    seconds: dict[int, float] = {}
    reference_released = None
    for workers in worker_counts:
        with SynthesisEngine(
            model,
            seeds,
            params,
            num_workers=workers,
            chunk_size=chunk_size,
            batch_size=BATCH_SIZE,
        ) as engine:
            engine.start()
            start = time.perf_counter()
            report = engine.run_attempts(num_attempts, base_seed=23)
            elapsed = time.perf_counter() - start
        seconds[workers] = elapsed
        released = report.released_dataset().data
        if reference_released is None:
            reference_released = released
        elif not np.array_equal(reference_released, released):
            raise AssertionError(
                f"{workers}-worker release set diverged from the serial reference"
            )
        baseline = seconds[worker_counts[0]]
        result.add_row(
            workers,
            report.num_attempts,
            elapsed,
            report.num_attempts / elapsed if elapsed > 0 else float("inf"),
            baseline / elapsed if elapsed > 0 else float("inf"),
        )
    return result, seconds


def _scale() -> tuple[int, int, int, tuple[int, ...]]:
    smoke = _smoke_env()
    raw_records = _int_env(
        "REPRO_BENCH_ENGINE_RAW_RECORDS", SMOKE_RAW_RECORDS if smoke else FULL_RAW_RECORDS
    )
    attempts = _int_env(
        "REPRO_BENCH_ENGINE_ATTEMPTS", SMOKE_ATTEMPTS if smoke else FULL_ATTEMPTS
    )
    chunk = _int_env("REPRO_BENCH_ENGINE_CHUNK", 256)
    worker_counts = (1, 2) if smoke else (1, 2, 4)
    return raw_records, attempts, chunk, worker_counts


def _check_floors(seconds: dict[int, float], smoke: bool) -> list[str]:
    """Floor violations, as human-readable failure strings (empty = pass)."""
    cpus = _available_cpus()
    failures = []
    if smoke:
        if cpus >= 2 and 2 in seconds and seconds[2] >= seconds[1]:
            failures.append(
                f"2-worker engine must beat 1 worker on wall-clock: "
                f"{seconds[2]:.2f}s vs {seconds[1]:.2f}s"
            )
    else:
        if cpus >= FULL_FLOOR_WORKERS and FULL_FLOOR_WORKERS in seconds:
            speedup = seconds[1] / seconds[FULL_FLOOR_WORKERS]
            if speedup < FULL_FLOOR:
                failures.append(
                    f"{FULL_FLOOR_WORKERS}-worker speedup {speedup:.2f}x below "
                    f"the {FULL_FLOOR}x floor"
                )
    return failures


def _record_json(raw_records, attempts, chunk, worker_counts, seconds) -> None:
    from conftest import write_benchmark_json

    best = min(seconds.values())
    write_benchmark_json(
        "bench_parallel_engine",
        params={
            "raw_records": raw_records,
            "attempts": attempts,
            "chunk_size": chunk,
            "batch_size": BATCH_SIZE,
            "worker_counts": list(worker_counts),
        },
        wall_time=sum(seconds.values()),
        throughput=attempts / best if best > 0 else None,
        extra={"seconds_per_worker_count": {str(w): s for w, s in seconds.items()}},
    )


def test_parallel_engine_scaling(record_result):
    raw_records, attempts, chunk, worker_counts = _scale()
    result, seconds = run_benchmark(raw_records, attempts, chunk, worker_counts)
    record_result("parallel_engine.txt", result)
    _record_json(raw_records, attempts, chunk, worker_counts, seconds)
    failures = _check_floors(seconds, _smoke_env())
    assert not failures, "; ".join(failures)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small sizes; assert only that 2 workers beat 1",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        os.environ["REPRO_BENCH_ENGINE_SMOKE"] = "1"

    raw_records, attempts, chunk, worker_counts = _scale()
    result, seconds = run_benchmark(raw_records, attempts, chunk, worker_counts)
    print(result.to_text())
    results_dir = Path(__file__).parent / "results"
    results_dir.mkdir(exist_ok=True)
    (results_dir / "parallel_engine.txt").write_text(result.to_text() + "\n")
    _record_json(raw_records, attempts, chunk, worker_counts, seconds)

    cpus = _available_cpus()
    needed = 2 if args.smoke else FULL_FLOOR_WORKERS
    if cpus < needed:
        print(
            f"NOTE: only {cpus} cpu(s) available; the {needed}-worker floor "
            "was measured but not asserted"
        )
        return 0
    failures = _check_floors(seconds, args.smoke)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if failures:
        return 1
    print("OK: scaling floors satisfied")
    return 0


if __name__ == "__main__":
    sys.exit(main())
