"""Figure 4: statistical distance of attribute-pair joint distributions."""

from conftest import run_once

from repro.experiments.statistical_distance import run_pairwise_distance


def test_figure4_pairwise_distance(benchmark, context, record_result):
    result = run_once(benchmark, lambda: run_pairwise_distance(context))
    record_result("figure4_distance_pairs.txt", result)

    marginals = result.row_by_key("marginals")[1]
    synthetics = [
        result.row_by_key(variant)[1]
        for variant in ("omega=11", "omega=10", "omega=9")
    ]

    # Shape check (paper, Figure 4): synthetics preserve pairwise structure
    # better than the independent marginals baseline.
    assert min(synthetics) < marginals
